"""Unit tests for the parser."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import ParseError
from repro.frontend.parser import parse
from repro.frontend.types import FLOAT, INT, VOID


def parse_filter(body, signature="float->float", name="F"):
    program = parse(f"{signature} filter {name} {{ {body} }}")
    decl = program.stream(name)
    assert isinstance(decl, ast.FilterDecl)
    return decl


def parse_expr(text):
    decl = parse_filter(f"work push 1 pop 1 {{ push({text}); pop(); }}")
    push = decl.work.body.stmts[0]
    assert isinstance(push, ast.PushStmt)
    return push.value


class TestStreamDecls:
    def test_filter_signature(self):
        decl = parse_filter("work push 1 pop 1 { push(pop()); }")
        assert decl.in_type == FLOAT
        assert decl.out_type == FLOAT

    def test_void_source(self):
        decl = parse_filter("work push 1 { push(1.0); }", "void->float")
        assert decl.in_type == VOID

    def test_parameters(self):
        program = parse("int->int filter F(int n, float k) "
                        "{ work push 1 pop 1 { push(pop()); } }")
        decl = program.stream("F")
        assert [p.name for p in decl.params] == ["n", "k"]
        assert [p.ty for p in decl.params] == [INT, FLOAT]

    def test_top_is_last_declaration(self):
        program = parse(
            "void->void pipeline A { add B(); }"
            "void->void pipeline B { add A(); }")
        assert program.top.name == "B"

    def test_missing_work_is_error(self):
        with pytest.raises(ParseError, match="no work block"):
            parse("int->int filter F { init { } }")

    def test_duplicate_work_is_error(self):
        with pytest.raises(ParseError, match="duplicate work"):
            parse_filter("work pop 1 { pop(); } work pop 1 { pop(); }",
                         "float->void")

    def test_empty_program_is_error(self):
        with pytest.raises(ParseError, match="empty program"):
            parse("   ")


class TestFilterMembers:
    def test_fields(self):
        decl = parse_filter(
            "float x; int y = 3; work push 1 pop 1 { push(pop()); }")
        assert [f.name for f in decl.fields] == ["x", "y"]
        assert decl.fields[1].init is not None

    def test_array_field_type_prefix(self):
        decl = parse_filter(
            "float[8] w; work push 1 pop 1 { push(pop()); }")
        assert len(decl.fields[0].dims) == 1

    def test_array_field_suffix_form(self):
        decl = parse_filter(
            "float w[8][4]; work push 1 pop 1 { push(pop()); }")
        assert len(decl.fields[0].dims) == 2

    def test_comma_separated_fields(self):
        decl = parse_filter(
            "int a, b, c; work push 1 pop 1 { push(pop()); }")
        assert [f.name for f in decl.fields] == ["a", "b", "c"]

    def test_helper_function(self):
        decl = parse_filter(
            "float f(float x) { return x * 2; } "
            "work push 1 pop 1 { push(f(pop())); }")
        assert decl.helpers[0].name == "f"
        assert len(decl.helpers[0].params) == 1

    def test_init_block(self):
        decl = parse_filter(
            "float x; init { x = 1; } work push 1 pop 1 { push(pop()); }")
        assert decl.init is not None

    def test_prework(self):
        decl = parse_filter(
            "prework push 2 { push(0); push(0); } "
            "work push 1 pop 1 { push(pop()); }")
        assert decl.prework is not None
        assert decl.work is not None

    def test_rates_are_expressions(self):
        decl = parse_filter(
            "work push 1 pop 1 + 2 peek 2 * 4 { push(pop()); }")
        assert isinstance(decl.work.pop_rate, ast.BinaryOp)
        assert isinstance(decl.work.peek_rate, ast.BinaryOp)


class TestComposites:
    def test_pipeline_adds(self):
        program = parse(
            "void->void pipeline P { add A(); add B(1, 2); }")
        decl = program.stream("P")
        adds = [s for s in decl.body.stmts if isinstance(s, ast.AddStmt)]
        assert [a.child for a in adds] == ["A", "B"]
        assert len(adds[1].args) == 2

    def test_pipeline_with_for(self):
        program = parse(
            "void->void pipeline P { for (int i = 0; i < 4; i++) "
            "add Stage(i); }")
        decl = program.stream("P")
        assert isinstance(decl.body.stmts[0], ast.ForStmt)

    def test_splitjoin(self):
        program = parse(
            "float->float splitjoin S { split duplicate; add A(); "
            "add B(); join roundrobin(1, 2); }")
        decl = program.stream("S")
        assert decl.split.kind == "duplicate"
        assert len(decl.join.weights) == 2

    def test_splitjoin_roundrobin_default(self):
        program = parse(
            "float->float splitjoin S { split roundrobin; add A(); "
            "join roundrobin; }")
        decl = program.stream("S")
        assert decl.split.kind == "roundrobin"
        assert decl.split.weights == []

    def test_splitjoin_requires_split_and_join(self):
        with pytest.raises(ParseError, match="needs both split and join"):
            parse("float->float splitjoin S { add A(); }")

    def test_duplicate_split_is_error(self):
        with pytest.raises(ParseError, match="duplicate split"):
            parse("float->float splitjoin S { split duplicate; "
                  "split duplicate; add A(); join roundrobin; }")

    def test_anonymous_pipeline(self):
        program = parse(
            "void->void pipeline P { add pipeline { add A(); }; }")
        decl = program.stream("P")
        add = decl.body.stmts[0]
        assert isinstance(add, ast.AddStmt)
        assert add.anonymous is not None
        assert isinstance(add.anonymous, ast.PipelineDecl)

    def test_anonymous_filter_with_signature(self):
        program = parse(
            "void->void pipeline P { add float->float filter "
            "{ work push 1 pop 1 { push(pop()); } }; }")
        add = program.stream("P").body.stmts[0]
        assert isinstance(add.anonymous, ast.FilterDecl)

    def test_nested_block_in_composite_keeps_add(self):
        program = parse(
            "void->void pipeline P { for (int i = 0; i < 2; i++) "
            "{ int j = i; add S(j); } }")
        assert program.stream("P") is not None

    def test_add_outside_composite_is_error(self):
        with pytest.raises(ParseError, match="composite"):
            parse("float->float filter F { work push 1 pop 1 "
                  "{ add X(); } }")

    def test_feedbackloop(self):
        program = parse("""
            float->float feedbackloop FB {
              join roundrobin(1, 1);
              body BodyF();
              loop LoopF();
              split roundrobin(1, 1);
              enqueue 0;
              enqueue 1;
            }""")
        decl = program.stream("FB")
        assert isinstance(decl, ast.FeedbackLoopDecl)
        assert decl.body_add.child == "BodyF"
        assert decl.loop_add.child == "LoopF"
        assert len(decl.enqueues) == 2

    def test_feedbackloop_requires_all_parts(self):
        with pytest.raises(ParseError, match="needs join, body, loop"):
            parse("float->float feedbackloop FB { join roundrobin(1,1); "
                  "body B(); split roundrobin(1,1); }")


class TestStatements:
    def test_compound_assignment(self):
        decl = parse_filter(
            "work push 1 pop 1 { float x = pop(); x += 2; push(x); }")
        assign = decl.work.body.stmts[1]
        assert isinstance(assign, ast.Assign)
        assert assign.op == "+="

    def test_postfix_increment_desugars(self):
        decl = parse_filter(
            "work push 1 pop 1 { int i = 0; i++; push(pop()); }")
        assign = decl.work.body.stmts[1]
        assert isinstance(assign, ast.Assign)
        assert assign.op == "+="

    def test_prefix_decrement_desugars(self):
        decl = parse_filter(
            "work push 1 pop 1 { int i = 9; --i; push(pop()); }")
        assign = decl.work.body.stmts[1]
        assert assign.op == "-="

    def test_empty_statement(self):
        decl = parse_filter("work push 1 pop 1 { ; push(pop()); }")
        assert isinstance(decl.work.body.stmts[0], ast.Block)

    def test_while_and_control(self):
        decl = parse_filter(
            "work push 1 pop 1 { int i = 0; while (i < 3) { "
            "if (i == 1) { i++; continue; } i++; } push(pop()); }")
        loop = decl.work.body.stmts[1]
        assert isinstance(loop, ast.WhileStmt)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_ternary_right_associative(self):
        decl = parse_filter(
            "work push 1 pop 1 { int a = 1 > 0 ? 1 : 0 > 1 ? 2 : 3; "
            "push(pop()); }")
        var = decl.work.body.stmts[0]
        assert isinstance(var.init, ast.TernaryOp)
        assert isinstance(var.init.otherwise, ast.TernaryOp)

    def test_cast(self):
        expr = parse_expr("(int)2.5")
        assert isinstance(expr, ast.Cast)
        assert expr.target == INT

    def test_cast_vs_parenthesized(self):
        expr = parse_expr("(x) + 1")
        assert isinstance(expr, ast.BinaryOp)

    def test_peek_and_pop(self):
        expr = parse_expr("peek(2) + pop()")
        assert isinstance(expr.left, ast.PeekExpr)
        assert isinstance(expr.right, ast.PopExpr)

    def test_pi_literal(self):
        expr = parse_expr("pi")
        assert isinstance(expr, ast.FloatLit)
        assert abs(expr.value - 3.14159265) < 1e-6

    def test_call_with_args(self):
        expr = parse_expr("atan2(1.0, 2.0)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 2

    def test_nested_indexing(self):
        decl = parse_filter(
            "float m[2][2]; work push 1 pop 1 { push(m[0][1]); pop(); }")
        push = decl.work.body.stmts[0]
        assert isinstance(push.value, ast.Index)
        assert isinstance(push.value.base, ast.Index)

    def test_unary_plus_is_dropped(self):
        expr = parse_expr("+5")
        assert isinstance(expr, ast.IntLit)

    def test_logical_operators(self):
        expr = parse_expr("1 < 2 && 3 > 2 || false")
        assert expr.op == "||"

    def test_error_has_location(self):
        with pytest.raises(ParseError) as exc:
            parse("float->float filter F { work push 1 pop 1 { push(+); } }")
        assert exc.value.loc.line == 1
