"""Fault injection, resource guardrails and graceful degradation.

Proves the robustness contract of ``docs/ROBUSTNESS.md``: every
injectable fault produces a structured diagnostic (never a raw
traceback or a silently-zero checksum), guardrail violations raise
:class:`ResourceExhausted` with provenance, temp build dirs never leak,
and every native consumer degrades to the interpreter when the
toolchain — not the generated program — fails.
"""

from __future__ import annotations

import glob

import pytest

from repro import compile_source
from repro.backend import runner
from repro.backend.runner import (NativeCompileError, NativeProtocolError,
                                  NativeRunError, compile_and_run,
                                  parse_run_output)
from repro.cli import main
from repro.faults import (FaultPlan, ResourceExhausted, ResourceLimits,
                          active_limits, inject, use_limits)
from repro.faults import limits as faults_limits
from repro.fuzz.oracle import run_source
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from tests.conftest import DEMO_PROGRAM, TINY_PROGRAM, requires_cc

GOOD_STDERR = "checksum 00000000deadbeef\noutputs 12\nseconds 0.5\n"


@pytest.fixture()
def tiny_file(tmp_path):
    path = tmp_path / "tiny.str"
    path.write_text(TINY_PROGRAM)
    return str(path)


@pytest.fixture()
def metrics():
    """Enable tracing so counters record; reset around the test."""
    was_enabled = obs_trace.is_enabled()
    obs_trace.enable()
    obs_metrics.registry().reset()
    yield obs_metrics.registry()
    obs_metrics.registry().reset()
    if not was_enabled:
        obs_trace.disable()


def no_leaked_dirs() -> bool:
    import tempfile
    return not glob.glob(f"{tempfile.gettempdir()}/repro_native_*")


# -- ResourceLimits ----------------------------------------------------------

class TestResourceLimits:
    def test_parse_full_spec(self):
        limits = ResourceLimits.parse(
            "ops=200000,tokens=4096,solver=200,seconds=30")
        assert limits.max_unrolled_ops == 200000
        assert limits.max_steady_tokens_per_channel == 4096
        assert limits.max_solver_iterations == 200
        assert limits.compile_seconds == 30.0

    def test_parse_long_aliases(self):
        limits = ResourceLimits.parse(
            "max_unrolled_ops=7,compile_seconds=1.5")
        assert limits.max_unrolled_ops == 7
        assert limits.compile_seconds == 1.5

    def test_parse_errors(self):
        with pytest.raises(ValueError, match="unknown resource limit"):
            ResourceLimits.parse("bogus=1")
        with pytest.raises(ValueError, match="expected key=value"):
            ResourceLimits.parse("ops")
        with pytest.raises(ValueError, match="bad value"):
            ResourceLimits.parse("ops=lots")
        with pytest.raises(ValueError, match=">= 0"):
            ResourceLimits.parse("ops=-1")

    def test_merged_overrides_set_fields_only(self):
        base = ResourceLimits.parse("ops=100,seconds=10")
        merged = base.merged(ResourceLimits.parse("ops=5"))
        assert merged.max_unrolled_ops == 5
        assert merged.compile_seconds == 10.0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIMITS", "tokens=99")
        assert active_limits().max_steady_tokens_per_channel == 99
        monkeypatch.setenv("REPRO_LIMITS", "tokens=42")
        assert active_limits().max_steady_tokens_per_channel == 42

    def test_use_limits_wins_over_env_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIMITS", "tokens=99")
        with use_limits(ResourceLimits(max_steady_tokens_per_channel=1)):
            assert active_limits().max_steady_tokens_per_channel == 1
        assert active_limits().max_steady_tokens_per_channel == 99


# -- guardrail enforcement ---------------------------------------------------

class TestGuardrails:
    def test_steady_token_cap_names_channel(self):
        with use_limits(ResourceLimits(max_steady_tokens_per_channel=0)):
            with pytest.raises(ResourceExhausted) as excinfo:
                compile_source(TINY_PROGRAM)
        error = excinfo.value
        assert error.resource == "max_steady_tokens_per_channel"
        assert error.limit == 0
        assert "channel" in error.message
        assert "->" in error.message  # src -> dst provenance

    def test_solver_iteration_cap(self):
        with use_limits(ResourceLimits(max_solver_iterations=1)):
            with pytest.raises(ResourceExhausted) as excinfo:
                compile_source(DEMO_PROGRAM)
        assert excinfo.value.resource == "max_solver_iterations"
        assert "solver" in str(excinfo.value) \
            or "fixpoint" in str(excinfo.value)

    def test_unrolled_op_cap_names_filter(self):
        stream = compile_source(DEMO_PROGRAM)
        with use_limits(ResourceLimits(max_unrolled_ops=10)):
            with pytest.raises(ResourceExhausted) as excinfo:
                stream.lower()
        error = excinfo.value
        assert error.resource == "max_unrolled_ops"
        assert "filter" in error.where  # offending filter's provenance
        assert error.actual > 10

    def test_zero_wall_clock_budget(self):
        with use_limits(ResourceLimits(compile_seconds=0.0)):
            with pytest.raises(ResourceExhausted) as excinfo:
                compile_source(DEMO_PROGRAM)
        assert excinfo.value.resource == "compile_seconds"
        assert "wall-clock" in str(excinfo.value)

    def test_generous_limits_change_nothing(self):
        generous = ResourceLimits.parse(
            "ops=10000000,tokens=1000000,solver=100000,seconds=600")
        baseline = compile_source(TINY_PROGRAM).run_laminar(4).outputs
        with use_limits(generous):
            guarded = compile_source(TINY_PROGRAM).run_laminar(4).outputs
        assert guarded == baseline

    def test_oracle_skips_resource_exhausted(self):
        with use_limits(ResourceLimits(max_steady_tokens_per_channel=0)):
            report = run_source(TINY_PROGRAM)
        assert report.divergence is None
        assert report.skipped is not None
        assert "resource exhausted" in report.skipped


# -- FaultPlan ---------------------------------------------------------------

class TestFaultPlan:
    def test_parse_rates_and_bare_sites(self):
        plan = FaultPlan.parse("cc-timeout:0.3,malformed-stdout:1")
        assert plan.rates == {"cc-timeout": 0.3, "malformed-stdout": 1.0}
        assert FaultPlan.parse("cc-missing").rates == {"cc-missing": 1.0}

    def test_parse_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.parse("cc-explode:1")

    def test_parse_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.parse("cc-timeout:2.0")
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.parse("cc-timeout:x")

    def test_deterministic_per_seed(self):
        first = FaultPlan.parse("cc-crash:0.5", seed=11)
        replay = FaultPlan.parse("cc-crash:0.5", seed=11)
        other = FaultPlan.parse("cc-crash:0.5", seed=12)
        decisions = [first.should_fire("cc-crash") for _ in range(40)]
        assert decisions == [replay.should_fire("cc-crash")
                             for _ in range(40)]
        assert decisions != [other.should_fire("cc-crash")
                             for _ in range(40)]

    def test_sites_draw_independent_streams(self):
        # Interleaving bin-nonzero draws must not perturb cc-crash's
        # decision sequence: each site has its own seeded stream.
        noisy = FaultPlan.parse("cc-crash:0.5,bin-nonzero:0.5", seed=3)
        crash = []
        for _ in range(50):
            noisy.should_fire("bin-nonzero")
            crash.append(noisy.should_fire("cc-crash"))
        solo = FaultPlan.parse("cc-crash:0.5", seed=3)
        assert crash == [solo.should_fire("cc-crash") for _ in range(50)]

    def test_rate_one_always_fires_and_counts(self):
        plan = FaultPlan.parse("cc-missing:1")
        assert all(plan.should_fire("cc-missing") for _ in range(5))
        assert plan.fired["cc-missing"] == 5

    def test_unlisted_site_never_fires(self):
        plan = FaultPlan.parse("cc-missing:1")
        assert not plan.should_fire("bin-timeout")

    def test_null_plan_is_inactive(self):
        from repro.faults.plan import current_plan
        assert not current_plan().active
        assert not current_plan().should_fire("cc-missing")


# -- strict output-protocol parsing ------------------------------------------

class TestStrictProtocol:
    def test_good_output_parses(self):
        run = parse_run_output("1\n2.5\n", GOOD_STDERR, True)
        assert run.checksum == 0xDEADBEEF
        assert run.output_count == 12
        assert run.seconds == 0.5
        assert run.outputs == [1, 2.5]

    @pytest.mark.parametrize("missing", ["checksum", "outputs", "seconds"])
    def test_missing_field_rejected(self, missing):
        stderr = "\n".join(line for line in GOOD_STDERR.splitlines()
                           if not line.startswith(missing))
        with pytest.raises(NativeProtocolError,
                           match=f"missing '{missing}'"):
            parse_run_output("", stderr, False)

    def test_duplicate_field_rejected(self):
        with pytest.raises(NativeProtocolError, match="appears 2 times"):
            parse_run_output("", GOOD_STDERR + "checksum 1\n", False)

    def test_unparseable_field_rejected(self):
        stderr = GOOD_STDERR.replace("seconds 0.5", "seconds soon")
        with pytest.raises(NativeProtocolError, match="unparseable"):
            parse_run_output("", stderr, False)

    def test_unparseable_output_token_rejected(self):
        with pytest.raises(NativeProtocolError, match="output token"):
            parse_run_output("wat\n", GOOD_STDERR, True)

    def test_chatty_stderr_tolerated(self):
        stderr = "ld.so: preload warning\n" + GOOD_STDERR + "glibc note\n"
        assert parse_run_output("", stderr, False).output_count == 12

    def test_negative_zero_stays_float(self):
        run = parse_run_output("-0\n", GOOD_STDERR, True)
        assert isinstance(run.outputs[0], float)


# -- injected toolchain faults -----------------------------------------------

class TestInjection:
    def test_cc_missing_fires_before_any_dir(self):
        with inject(FaultPlan.parse("cc-missing:1")):
            with pytest.raises(NativeCompileError) as excinfo:
                compile_and_run("int main(void){return 0;}", 1)
        assert excinfo.value.injected
        assert "injected cc-missing" in str(excinfo.value)
        assert no_leaked_dirs()

    def test_cc_timeout_degradable_and_clean(self):
        with inject(FaultPlan.parse("cc-timeout:1")):
            with pytest.raises(NativeCompileError, match="timed out"):
                compile_and_run("int main(void){return 0;}", 1)
        assert no_leaked_dirs()

    @requires_cc
    def test_cc_crash_exhausts_bounded_retries(self, monkeypatch,
                                               metrics):
        monkeypatch.setattr(runner, "RETRY_BACKOFF_SECONDS", 0.0)
        with inject(FaultPlan.parse("cc-crash:1")):
            with pytest.raises(NativeCompileError,
                               match="killed by signal") as excinfo:
                compile_and_run("int main(void){return 0;}", 1)
        assert "attempt" in str(excinfo.value)
        assert metrics.counter("native.compile.retries").value \
            == runner.TRANSIENT_RETRIES
        assert no_leaked_dirs()

    @requires_cc
    def test_transient_crash_then_success(self, monkeypatch, metrics):
        monkeypatch.setattr(runner, "RETRY_BACKOFF_SECONDS", 0.0)
        # Pick a seed whose first draw fires but some draw within the
        # retry budget does not: the loop must recover and produce a
        # working binary.
        plan = None
        for seed in range(64):
            probe = FaultPlan.parse("cc-crash:0.4", seed=seed)
            draws = [probe.should_fire("cc-crash")
                     for _ in range(runner.TRANSIENT_RETRIES + 1)]
            if draws[0] and not all(draws):
                plan = FaultPlan.parse("cc-crash:0.4", seed=seed)
                break
        assert plan is not None
        code = ("#include <stdio.h>\n"
                "int main(int argc, char **argv){"
                "fprintf(stderr, \"checksum 1\\noutputs 0\\n"
                "seconds 0.0\\n\"); return 0;}")
        with inject(plan):
            run = compile_and_run(code, 1)
        assert run.checksum == 1
        assert no_leaked_dirs()

    @requires_cc
    def test_bin_nonzero_is_run_error_not_degradable(self):
        code = ("#include <stdio.h>\n"
                "int main(void){fprintf(stderr, \"checksum 1\\n"
                "outputs 0\\nseconds 0.0\\n\"); return 0;}")
        with inject(FaultPlan.parse("bin-nonzero:1")):
            with pytest.raises(NativeRunError, match="exit 1") as excinfo:
                compile_and_run(code, 1)
        assert excinfo.value.injected
        assert not isinstance(excinfo.value, NativeCompileError)
        assert no_leaked_dirs()

    def test_opt_nonconverge_surfaces_notice(self, capsys):
        with pytest.warns(RuntimeWarning, match="fixpoint"):
            code = main(["report", "lattice", "-n", "2",
                         "--inject", "opt-nonconverge:1"])
        assert code == 0  # under-optimized, never incorrect
        captured = capsys.readouterr()
        assert "did not reach a fixpoint" in captured.err
        assert "gave up" in captured.out

    @requires_cc
    def test_malformed_stdout_never_defaults_checksum(self):
        code = ("#include <stdio.h>\n"
                "int main(void){fprintf(stderr, \"checksum 1\\n"
                "outputs 0\\nseconds 0.0\\n\"); return 0;}")
        with inject(FaultPlan.parse("malformed-stdout:1")):
            with pytest.raises(NativeProtocolError, match="missing"):
                compile_and_run(code, 1)
        assert no_leaked_dirs()


# -- temp-dir lifecycle ------------------------------------------------------

@requires_cc
class TestArtifactLifecycle:
    GOOD = ("#include <stdio.h>\n"
            "int main(void){fprintf(stderr, \"checksum 1\\noutputs 0\\n"
            "seconds 0.0\\n\"); return 0;}")

    def test_success_deletes_workdir(self):
        compile_and_run(self.GOOD, 1)
        assert no_leaked_dirs()

    def test_real_failure_keeps_workdir_and_logs_path(self, tmp_path):
        with pytest.raises(NativeCompileError,
                           match="artifacts kept at") as excinfo:
            compile_and_run("this is not C", 1)
        kept = excinfo.value.artifacts
        assert kept is not None
        import shutil
        shutil.rmtree(kept, ignore_errors=True)

    def test_keep_artifacts_keeps_on_success(self):
        import shutil
        import tempfile
        before = set(glob.glob(f"{tempfile.gettempdir()}/repro_native_*"))
        compile_and_run(self.GOOD, 1, keep_artifacts=True)
        kept = set(glob.glob(
            f"{tempfile.gettempdir()}/repro_native_*")) - before
        assert len(kept) == 1
        for path in kept:
            shutil.rmtree(path, ignore_errors=True)

    def test_caller_workdir_never_removed(self, tmp_path):
        workdir = tmp_path / "build"
        compile_and_run(self.GOOD, 1, workdir=workdir)
        assert workdir.is_dir()
        with pytest.raises(NativeCompileError):
            compile_and_run("nope", 1, workdir=workdir)
        assert workdir.is_dir()


# -- graceful degradation end to end -----------------------------------------

class TestDegradation:
    def test_run_native_degrades_to_exit_zero(self, tiny_file, capsys,
                                              metrics):
        code = main(["run", tiny_file, "-n", "2", "--quiet", "--native",
                     "--inject", "cc-timeout:1"])
        assert code == 0
        err = capsys.readouterr().err
        assert "degraded to interpreter results" in err
        assert metrics.counter("native.fallback").value == 1
        assert no_leaked_dirs()

    def test_report_native_degrades(self, capsys, metrics):
        code = main(["report", "lattice", "-n", "4", "--native",
                     "--inject", "cc-missing:1"])
        assert code == 0
        assert "interpreter-only results" in capsys.readouterr().err
        assert metrics.counter("native.fallback").value == 1

    def test_profile_native_degrades(self, capsys, metrics):
        code = main(["profile", "lattice", "-n", "2", "--native",
                     "--inject", "cc-timeout:1"])
        assert code == 0
        captured = capsys.readouterr()
        assert "printing interpreter profile only" in captured.err
        assert "profile of" in captured.out  # interpreter profile printed
        assert metrics.counter("native.fallback").value == 1

    @requires_cc  # the oracle gates native routes on find_compiler()
    def test_fuzz_campaign_counts_degraded_runs(self, capsys, metrics):
        code = main(["fuzz", "--seed", "7", "-k", "3", "-n", "2",
                     "--native", "--inject", "cc-timeout:1"])
        assert code == 0
        assert "3 degraded" in capsys.readouterr().err
        assert metrics.counter("fuzz.degraded").value == 3
        assert no_leaked_dirs()

    @requires_cc
    def test_bin_fault_is_exit_four_not_degradation(self, tiny_file,
                                                    capsys):
        code = main(["run", tiny_file, "-n", "2", "--quiet", "--native",
                     "--inject", "bin-nonzero:1"])
        assert code == 4
        err = capsys.readouterr().err
        assert "native run failure" in err
        assert "Traceback" not in err
        assert no_leaked_dirs()

    def test_evaluate_stream_records_degradation(self, metrics):
        from repro.evaluation import evaluate_stream
        stream = compile_source(TINY_PROGRAM)
        with inject(FaultPlan.parse("cc-missing:1")):
            record = evaluate_stream("tiny", stream, iterations=4,
                                     native=True)
        assert record.degraded
        assert record.degraded_reason is not None
        assert record.native_seconds is None
        assert record.outputs_match  # interpreter verdict still present


# -- CLI limit handling ------------------------------------------------------

class TestCliLimits:
    def test_limits_exit_code_three_one_line(self, tiny_file, capsys):
        code = main(["run", tiny_file, "--limits", "tokens=0"])
        assert code == 3
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "resource exhausted" in err
        assert "Traceback" not in err

    def test_bad_limits_spec_rejected_by_argparse(self, tiny_file,
                                                  capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", tiny_file, "--limits", "bogus=1"])
        assert excinfo.value.code == 2

    def test_bad_inject_spec_rejected_by_argparse(self, tiny_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", tiny_file, "--inject", "cc-explode:1"])
        assert excinfo.value.code == 2

    def test_env_limits_apply(self, tiny_file, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LIMITS", "tokens=0")
        assert main(["run", tiny_file]) == 3

    def test_cli_limits_merge_over_env(self, tiny_file, monkeypatch):
        monkeypatch.setenv("REPRO_LIMITS", "tokens=0")
        # CLI override lifts the env cap: the run succeeds again.
        assert main(["run", tiny_file, "--quiet", "--limits",
                     "tokens=100000"]) == 0

    def test_env_inject_plan(self, tiny_file, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_INJECT", "cc-timeout:1")
        monkeypatch.setenv("REPRO_INJECT_SEED", "5")
        assert main(["run", tiny_file, "-n", "2", "--quiet",
                     "--native"]) == 0
        assert "degraded" in capsys.readouterr().err

    def test_malformed_env_inject_is_usage_error(self, tiny_file,
                                                 monkeypatch, capsys):
        monkeypatch.setenv("REPRO_INJECT", "nope:1")
        assert main(["run", tiny_file]) == 2
        assert "unknown fault site" in capsys.readouterr().err
