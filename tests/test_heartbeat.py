"""Tests for the native heartbeat side channel and stall watchdog."""

import json

import pytest

from repro.backend import runner
from repro.backend.common import C_MAIN, c_main
from repro.backend.laminar_c import generate_laminar_c
from repro.faults.plan import FaultPlan, inject
from repro.obs import bus as obs_bus
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from tests.conftest import requires_cc


@pytest.fixture(autouse=True)
def clean_obs():
    trace.disable()
    trace.reset()
    obs_bus.get_bus().reset_events()
    yield
    trace.disable()
    trace.reset()
    obs_bus.get_bus().reset_events()


class TestByteIdentity:
    def test_plain_main_is_the_seed_main(self):
        # The non-profile C main must stay byte-identical to the
        # pre-heartbeat seed: profiling off means *no* new code.
        assert c_main(False) == C_MAIN
        assert c_main() == C_MAIN

    def test_profile_main_differs_and_beats(self):
        profiled = c_main(True)
        assert profiled != C_MAIN
        assert "repro_hb_maybe" in profiled
        assert "repro_hb_emit" in profiled

    def test_plain_codegen_has_no_heartbeat_runtime(self, tiny_stream):
        code = generate_laminar_c(tiny_stream.lower().program)
        assert "repro_hb_" not in code
        assert "heartbeat-json" not in code

    def test_profile_codegen_has_heartbeat_runtime(self, tiny_stream):
        code = generate_laminar_c(tiny_stream.lower().program,
                                  profile=True)
        assert "repro_hb_init" in code
        assert "REPRO_HEARTBEAT_MS" in code
        assert "heartbeat-json" in code


class TestParseHeartbeat:
    def test_parses_a_valid_beat(self):
        line = ('heartbeat-json {"iter": 3, "outputs": 12, "ns": 500.0, '
                '"filters": [{"name": "Src", "ns": 100}]}')
        beat = runner.parse_heartbeat(line)
        assert beat == {"iter": 3, "outputs": 12, "ns": 500.0,
                        "filters": [{"name": "Src", "ns": 100}]}

    def test_non_heartbeat_lines_pass_through(self):
        assert runner.parse_heartbeat("checksum deadbeef") is None
        assert runner.parse_heartbeat("") is None

    def test_torn_beat_is_dropped_not_raised(self):
        # A killed binary can tear its final line mid-write.
        assert runner.parse_heartbeat('heartbeat-json {"iter": 3') is None
        assert runner.parse_heartbeat("heartbeat-json [1,2]") is None

    def test_hot_filter(self):
        beat = {"filters": [{"name": "a", "ns": 10},
                            {"name": "b", "ns": 90}]}
        assert runner.hot_filter(beat) == "b"
        assert runner.hot_filter({"filters": []}) is None
        assert runner.hot_filter(None) is None
        assert runner.hot_filter({}) is None

    def test_run_output_collects_heartbeats(self):
        stderr = "\n".join([
            'heartbeat-json {"iter": 1, "ns": 10}',
            'heartbeat-json {"iter": 2, "ns": 20}',
            "checksum 00000000000000aa",
            "outputs 4",
            "seconds 0.001",
        ])
        run = runner.parse_run_output("", stderr, print_outputs=False)
        assert [b["iter"] for b in run.heartbeats] == [1, 2]
        assert run.checksum == 0xAA


class TestWatchdogInjection:
    def test_bin_hang_without_watchdog_raises_immediately(self, tmp_path):
        binary = tmp_path / "prog"
        binary.write_text("")
        with inject(FaultPlan.parse("bin-hang:1")):
            with pytest.raises(runner.NativeStallError,
                               match="no heartbeat watchdog"):
                runner.run_binary(binary, 4)

    def test_bin_hang_trips_the_watchdog(self, tmp_path):
        trace.enable()
        obs_metrics.registry().reset()
        binary = tmp_path / "prog"
        binary.write_text("")
        with inject(FaultPlan.parse("bin-hang:1")):
            with pytest.raises(runner.NativeStallError,
                               match="injected-hang") as info:
                runner.run_binary(binary, 4, stall_timeout=0.3,
                                  timeout=30.0)
        assert info.value.injected
        assert info.value.stage == "stall"
        # The stall fired well before the 30s hard timeout and recorded
        # the event + counter with the last-known filter.
        events = obs_bus.get_bus().recent_events("native.stall")
        assert len(events) == 1
        assert events[0].attrs["last_filter"] == "injected-hang"
        assert events[0].attrs["beats"] == 1
        assert events[0].attrs["injected"] is True
        snapshot = obs_metrics.registry().as_dict()
        assert snapshot["native.stall"] == 1
        assert snapshot["native.heartbeat.count"] == 1


@requires_cc
class TestNativeHeartbeats:
    def test_profile_run_emits_live_heartbeats(self, tiny_stream,
                                               tmp_path):
        trace.enable()
        obs_metrics.registry().reset()
        code = generate_laminar_c(tiny_stream.lower().program,
                                  profile=True)
        seen = []
        run = runner.compile_and_run(code, 4, workdir=tmp_path,
                                     name="tiny_hb", heartbeat_ms=0,
                                     on_heartbeat=seen.append)
        # REPRO_HEARTBEAT_MS=0 beats every iteration plus one final
        # beat after the loop: deterministic iterations + 1.
        assert len(run.heartbeats) == 5
        assert len(seen) >= 2
        assert run.heartbeats[-1]["iter"] == 4
        assert run.heartbeats[-1]["outputs"] == run.output_count
        names = {f["name"] for f in run.heartbeats[-1]["filters"]}
        assert names  # per-filter accumulators present
        snapshot = obs_metrics.registry().as_dict()
        assert snapshot["native.heartbeat.count"] == 5
        assert snapshot["native.heartbeat.iterations"] == 4
        gauges = [k for k in snapshot
                  if k.startswith("native.heartbeat.filter.")]
        assert gauges

    def test_heartbeats_off_by_default(self, tiny_stream, tmp_path):
        code = generate_laminar_c(tiny_stream.lower().program,
                                  profile=True)
        run = runner.compile_and_run(code, 4, workdir=tmp_path,
                                     name="tiny_quiet")
        assert run.heartbeats == []

    def test_checksum_unchanged_by_heartbeats(self, tiny_stream,
                                              tmp_path):
        lowered = tiny_stream.lower().program
        plain = runner.compile_and_run(
            generate_laminar_c(lowered), 4,
            workdir=tmp_path / "plain", name="tiny_plain")
        beating = runner.compile_and_run(
            generate_laminar_c(lowered, profile=True), 4,
            workdir=tmp_path / "hb", name="tiny_hb", heartbeat_ms=0)
        assert plain.checksum == beating.checksum
        assert plain.output_count == beating.output_count
