"""Shared fixtures and program snippets for the test suite."""

from __future__ import annotations

import os

import pytest

from repro import compile_source
from repro.backend.runner import find_compiler


@pytest.fixture(scope="session", autouse=True)
def _isolated_ledger(tmp_path_factory):
    """Point the run ledger at a per-session temp dir.

    CLI commands append ledger records as a side effect; without this,
    running the test suite would grow ``.repro/ledger/`` in the repo.
    Subprocess tests inherit the override through os.environ.
    """
    previous = os.environ.get("REPRO_LEDGER_DIR")
    os.environ["REPRO_LEDGER_DIR"] = str(
        tmp_path_factory.mktemp("ledger"))
    yield
    if previous is None:
        os.environ.pop("REPRO_LEDGER_DIR", None)
    else:
        os.environ["REPRO_LEDGER_DIR"] = previous

@pytest.fixture(scope="session", autouse=True)
def _isolated_cache(tmp_path_factory):
    """Point the artifact cache at a per-session temp dir.

    Same rationale as the ledger: serve/cache tests (and any CLI
    invocation that builds natively) must not populate the repo's
    ``.repro/cache/``.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("artifact_cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


# A small but representative program: peeking FIR, duplicate splitjoin,
# rate conversion, scalar filter state and randomized input.
DEMO_PROGRAM = """
float->float filter LowPass(int N) {
  float[N] coeff;
  init {
    for (int i = 0; i < N; i++)
      coeff[i] = sin(0.2 * (i + 1));
  }
  work push 1 pop 1 peek N {
    float sum = 0;
    for (int i = 0; i < N; i++)
      sum += peek(i) * coeff[i];
    push(sum);
    pop();
  }
}

float->float filter Decimate() {
  work push 1 pop 2 {
    push(pop());
    pop();
  }
}

void->float filter Source() {
  float x;
  init { x = 0; }
  work push 1 {
    push(randf() + sin(x));
    x = x + 0.25;
  }
}

float->void filter Sink() {
  work pop 1 { println(pop()); }
}

void->void pipeline Demo {
  add Source();
  add splitjoin {
    split duplicate;
    add LowPass(8);
    add pipeline {
      add LowPass(4);
      add Decimate();
    };
    join roundrobin(2, 1);
  };
  add Sink();
}
"""

# Minimal linear pipeline, fully static (no RNG).
TINY_PROGRAM = """
void->float filter Ramp() {
  float x;
  init { x = 0; }
  work push 1 {
    push(x);
    x = x + 1;
  }
}

float->float filter Scale(float k) {
  work push 1 pop 1 { push(pop() * k); }
}

float->void filter Out() {
  work pop 1 { println(pop()); }
}

void->void pipeline Tiny {
  add Ramp();
  add Scale(2.5);
  add Out();
}
"""


@pytest.fixture(scope="session")
def demo_stream():
    return compile_source(DEMO_PROGRAM, "demo.str")


@pytest.fixture(scope="session")
def tiny_stream():
    return compile_source(TINY_PROGRAM, "tiny.str")


requires_cc = pytest.mark.skipif(find_compiler() is None,
                                 reason="no C compiler on PATH")
