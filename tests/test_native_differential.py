"""Differential testing against the native toolchain.

Every test compiles generated C with the host compiler and requires
bit-identical output checksums across all execution routes.  Skipped
when no compiler is available.
"""

import pytest

from repro import LoweringOptions, compile_source
from repro.backend import checksum_outputs, compile_and_run
from tests.conftest import requires_cc

pytestmark = requires_cc

PREAMBLE = """
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
"""

# Programs chosen to stress distinct codegen paths.
PROGRAMS = {
    "weighted_roundrobin": (
        PREAMBLE +
        "float->float filter Id() { work push 1 pop 1 { push(pop()); } }"
        "void->void pipeline P { add Src(); add splitjoin { "
        "split roundrobin(3, 2); add Id(); add Id(); "
        "join roundrobin(3, 2); }; add Snk(); }"),
    "stateful_iir": (
        PREAMBLE +
        "float->float filter IIR(float a) { float s; init { s = 0; } "
        "work push 1 pop 1 { s = a * s + (1 - a) * pop(); push(s); } }"
        "void->void pipeline P { add Src(); add IIR(0.9); add IIR(0.5); "
        "add Snk(); }"),
    "int_hash_chain": (
        "void->int filter S() { work push 1 { push(randi(1000000)); } }"
        "int->int filter H() { work push 1 pop 1 { int v = pop(); "
        "v = v * 2654435761; v = v ^ (v >> 16); v = v * 2246822519; "
        "push(v ^ (v >> 13)); } }"
        "int->void filter P() { work pop 1 { println(pop()); } }"
        "void->void pipeline Top { add S(); add H(); add H(); add P(); }"),
    "select_heavy": (
        PREAMBLE +
        "float->float filter Tri() { work push 1 pop 1 { "
        "float v = pop(); float r = v < 0.33 ? v * 3 "
        ": v < 0.66 ? 2 - v * 3 : v - 0.66; push(r); } }"
        "void->void pipeline P { add Src(); add Tri(); add Snk(); }"),
    "feedback": (
        PREAMBLE +
        "float->float filter Mix() { work push 2 pop 2 { "
        "float a = pop(); float b = pop(); push(a + 0.5 * b); "
        "push(a - 0.5 * b); } }"
        "float->float filter Id() { work push 1 pop 1 { push(pop()); } }"
        "void->void pipeline P { add Src(); add feedbackloop { "
        "join roundrobin(1, 1); body Mix(); loop Id(); "
        "split roundrobin(1, 1); enqueue 0.25; }; add Snk(); }"),
    "helper_early_return": (
        PREAMBLE +
        "float->float filter F() { "
        "float clamp(float x) { if (x > 0.8) return 0.8; "
        "if (x < 0.2) return 0.2; return x; } "
        "work push 1 pop 1 { push(clamp(pop())); } }"
        "void->void pipeline P { add Src(); add F(); add Snk(); }"),
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_four_way_checksum(name, tmp_path):
    iterations = 24
    stream = compile_source(PROGRAMS[name])
    expected = checksum_outputs(stream.run_fifo(iterations).outputs)
    laminar = checksum_outputs(stream.run_laminar(iterations).outputs)
    assert laminar == expected, "interpreter routes diverge"
    native_fifo = compile_and_run(stream.fifo_c(), iterations,
                                  workdir=tmp_path, name="f")
    native_laminar = compile_and_run(stream.laminar_c(), iterations,
                                     workdir=tmp_path, name="l")
    assert native_fifo.checksum == expected, "native FIFO diverges"
    assert native_laminar.checksum == expected, "native LaminarIR diverges"


def test_scaled_native_matches(tmp_path):
    stream = compile_source(
        PREAMBLE +
        "float->float filter W() { work push 1 pop 1 peek 3 { "
        "push(peek(0) * 0.5 + peek(2)); pop(); } }"
        "void->void pipeline P { add Src(); add W(); add Snk(); }")
    iterations = 24
    expected = checksum_outputs(stream.run_fifo(iterations).outputs)
    for multiplier in (2, 4):
        code = stream.laminar_c(
            LoweringOptions(steady_multiplier=multiplier))
        native = compile_and_run(code, iterations // multiplier,
                                 workdir=tmp_path,
                                 name=f"scaled{multiplier}")
        assert native.checksum == expected, multiplier
        assert native.output_count == iterations


def test_ablation_native_matches(tmp_path):
    stream = compile_source(PROGRAMS["weighted_roundrobin"])
    iterations = 20
    expected = checksum_outputs(stream.run_fifo(iterations).outputs)
    code = stream.laminar_c(LoweringOptions(eliminate_splitjoin=False))
    native = compile_and_run(code, iterations, workdir=tmp_path)
    assert native.checksum == expected


def test_suite_benchmark_native(tmp_path):
    from repro.suite import load_benchmark
    stream = load_benchmark("fft")
    iterations = 6
    expected = checksum_outputs(stream.run_fifo(iterations).outputs)
    native = compile_and_run(stream.laminar_c(), iterations,
                             workdir=tmp_path)
    assert native.checksum == expected
