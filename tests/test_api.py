"""Tests for the public facade (repro.api) and the evaluation records."""

import pytest

from repro import (CompileError, LoweringOptions, OptOptions,
                   check_equivalence, compile_file, compile_source)
from repro.evaluation import (evaluate_stream, format_table,
                              geometric_mean)
from repro.machine import I7_2600K, PLATFORMS


class TestCompiledStream:
    def test_name(self, demo_stream):
        assert demo_stream.name == "Demo"

    def test_stats_keys(self, demo_stream):
        stats = demo_stream.stats()
        for key in ("filters", "splitters", "joiners", "channels",
                    "peeking_filters", "steady_firings", "init_firings"):
            assert key in stats

    def test_lower_is_cached(self, demo_stream):
        first = demo_stream.lower()
        second = demo_stream.lower()
        assert first is second

    def test_lower_cache_respects_options(self, demo_stream):
        default = demo_stream.lower()
        ablated = demo_stream.lower(
            LoweringOptions(eliminate_splitjoin=False))
        assert default is not ablated

    def test_lower_cache_keys_on_field_values(self, demo_stream):
        # Equal-valued but distinct option instances share one entry...
        first = demo_stream.lower(LoweringOptions(), OptOptions())
        second = demo_stream.lower(LoweringOptions(), OptOptions())
        assert first is second
        # ...and None means "defaults", hitting the same entry.
        assert demo_stream.lower() is first

    def test_lower_cache_distinguishes_nested_promote_options(
            self, demo_stream):
        from repro.opt import PromoteOptions
        default = demo_stream.lower()
        tweaked = demo_stream.lower(None, OptOptions(
            promote=PromoteOptions(max_array_elements=0)))
        assert tweaked is not default
        assert tweaked.opt_stats.slots_promoted <= \
            default.opt_stats.slots_promoted

    def test_lower_cache_survives_repr_collisions(self, demo_stream):
        # A nested options object whose repr hides its fields must not
        # alias distinct configurations (the old repr()-based key did).
        import dataclasses

        from repro.opt import PromoteOptions

        @dataclasses.dataclass(repr=False)
        class StealthPromote(PromoteOptions):
            def __repr__(self):
                return "PromoteOptions()"

        small = StealthPromote(max_array_elements=0)
        large = StealthPromote(max_array_elements=4096)
        assert repr(small) == repr(large)
        lowered_small = demo_stream.lower(None, OptOptions(promote=small))
        lowered_large = demo_stream.lower(None, OptOptions(promote=large))
        assert lowered_small is not lowered_large

    def test_lower_cache_accepts_container_valued_options(
            self, demo_stream):
        # Regression: _options_key hashed raw field values, so a
        # list-valued pipeline raised "unhashable type: 'list'".
        listed = demo_stream.lower(None, OptOptions(
            pipeline=["fold", "cse"]))
        tupled = demo_stream.lower(None, OptOptions(
            pipeline=("constant_folding", "cse")))
        assert listed is tupled

    def test_options_key_normalizes_dicts_and_sets(self):
        from repro.api import _options_key

        assert _options_key({"b": [1, 2], "a": {3}}) == \
            _options_key({"a": {3}, "b": (1, 2)})
        assert _options_key({"a": 1}) != _options_key({"a": 2})
        hash(_options_key({"a": [1, {2}], "b": {"c": [3]}}))

    def test_options_fingerprint_is_stable_and_distinct(self):
        from repro.api import options_fingerprint

        assert options_fingerprint() == options_fingerprint()
        assert options_fingerprint(None, OptOptions(pipeline="fold")) \
            != options_fingerprint()

    def test_compile_file(self, tmp_path):
        path = tmp_path / "p.str"
        path.write_text(
            "void->int filter S() { work push 1 { push(7); } }"
            "int->void filter P() { work pop 1 { println(pop()); } }"
            "void->void pipeline Top { add S(); add P(); }")
        stream = compile_file(path)
        assert stream.run_fifo(2).outputs == [7, 7]

    def test_compile_error_is_catchable(self):
        with pytest.raises(CompileError):
            compile_source("void->void pipeline P { }")

    def test_equivalence_report(self, demo_stream):
        report = check_equivalence(demo_stream, iterations=3)
        assert report.matches
        assert report.output_count == len(report.fifo.outputs)
        assert report.checksum != 0


class TestEvaluation:
    @pytest.fixture(scope="class")
    def record(self, demo_stream):
        return evaluate_stream("demo", demo_stream, iterations=4)

    def test_outputs_match(self, record):
        assert record.outputs_match

    def test_memory_reduction_in_range(self, record):
        assert 0.0 <= record.memory_reduction <= 1.0

    def test_speedups_above_one(self, record):
        for model in PLATFORMS.values():
            assert record.speedup(model) > 1.0

    def test_energy_saving_in_range(self, record):
        for model in PLATFORMS.values():
            assert 0.0 < record.energy_saving(model) < 1.0

    def test_modeled_memory_includes_spills(self, record):
        raw = record.laminar_counters.memory_accesses
        modeled = record.memory_accesses_modeled(I7_2600K, laminar=True)
        assert modeled >= raw

    def test_comm_reduction_positive_for_splitjoin(self, record):
        assert record.comm.reduction > 0.0

    def test_spills_per_platform(self, record):
        assert set(record.spills) == {m.name for m in PLATFORMS.values()}


class TestHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([5.0]) == pytest.approx(5.0)

    def test_format_table_alignment(self):
        text = format_table(["name", "x"], [["a", "1"], ["bb", "22"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert len(lines) == 5  # title, header, rule, two rows
