"""Tests for the intrinsic table and diagnostics formatting."""

import math

import pytest

from repro.frontend.errors import (CompileError, SourceLocation)
from repro.frontend.intrinsics import (INTRINSICS, XorShift32,
                                       expects_int_args, result_type)
from repro.frontend.types import FLOAT, INT


class TestIntrinsicTable:
    def test_transcendentals_present(self):
        for name in ("sin", "cos", "tan", "exp", "log", "sqrt", "atan2",
                     "pow", "floor", "ceil", "round", "abs", "min", "max",
                     "fmod", "randf", "randi"):
            assert name in INTRINSICS

    def test_arities(self):
        assert INTRINSICS["sin"].arity == 1
        assert INTRINSICS["atan2"].arity == 2
        assert INTRINSICS["randf"].arity == 0
        assert INTRINSICS["randi"].arity == 1

    def test_purity(self):
        assert INTRINSICS["sin"].pure
        assert not INTRINSICS["randf"].pure
        assert not INTRINSICS["randi"].pure

    def test_impls_match_math(self):
        assert INTRINSICS["sin"].impl(1.0) == math.sin(1.0)
        assert INTRINSICS["pow"].impl(2.0, 10.0) == 1024.0
        assert INTRINSICS["round"].impl(2.5) == 3.0
        assert INTRINSICS["round"].impl(-2.5) == -2.0  # floor(x+0.5)

    def test_result_types(self):
        assert result_type(INTRINSICS["sin"], [INT]) == FLOAT
        assert result_type(INTRINSICS["abs"], [INT]) == INT
        assert result_type(INTRINSICS["abs"], [FLOAT]) == FLOAT
        assert result_type(INTRINSICS["min"], [INT, INT]) == INT
        assert result_type(INTRINSICS["min"], [INT, FLOAT]) == FLOAT
        assert result_type(INTRINSICS["randi"], [INT]) == INT

    def test_int_arg_requirements(self):
        assert expects_int_args(INTRINSICS["randi"])
        assert not expects_int_args(INTRINSICS["min"])

    def test_c_names(self):
        assert INTRINSICS["randf"].c_name == "repro_randf"
        assert INTRINSICS["sin"].c_name == "sin"


class TestXorShift:
    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            XorShift32(seed=0)

    def test_same_seed_same_stream(self):
        a = XorShift32(seed=42)
        b = XorShift32(seed=42)
        assert [a.next_u32() for _ in range(8)] == \
            [b.next_u32() for _ in range(8)]

    def test_randi_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            XorShift32().randi(0)


class TestDiagnostics:
    def test_location_str(self):
        loc = SourceLocation("f.str", 3, 7)
        assert str(loc) == "f.str:3:7"

    def test_error_carries_location(self):
        error = CompileError("boom", SourceLocation("f.str", 2, 4),
                             source="line one\nline two")
        text = error.format()
        assert "f.str:2:4" in text
        assert "line two" in text
        assert text.splitlines()[-1] == "   ^"

    def test_error_without_source(self):
        error = CompileError("boom", SourceLocation("f.str", 2, 4))
        assert error.format() == "f.str:2:4: error: boom"

    def test_error_line_out_of_range(self):
        error = CompileError("boom", SourceLocation("f.str", 99, 1),
                             source="one line")
        assert "99:1" in error.format()
