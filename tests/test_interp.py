"""Tests for both interpreters: semantics, counters, determinism."""

import pytest

from repro import compile_source
from repro.frontend.errors import InterpError, RateError
from repro.interp import FifoInterpreter, LaminarInterpreter
from repro.interp.counters import Counters
from repro.interp.fifo import RingBuffer
from repro.interp.values import runtime_binary, runtime_unary

PREAMBLE = """
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
"""


def run_fifo(body, iterations=4):
    stream = compile_source(PREAMBLE + body)
    return stream.run_fifo(iterations)


class TestRuntimeSemantics:
    def test_int_division_truncates_toward_zero(self):
        assert runtime_binary("/", -7, 2) == -3
        assert runtime_binary("/", 7, -2) == -3
        assert runtime_binary("/", 7, 2) == 3

    def test_int_modulo_sign_of_dividend(self):
        assert runtime_binary("%", -7, 2) == -1
        assert runtime_binary("%", 7, -2) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpError, match="division by zero"):
            runtime_binary("/", 1, 0)

    def test_int_overflow_wraps(self):
        assert runtime_binary("+", 2**31 - 1, 1) == -(2**31)
        assert runtime_binary("*", 65536, 65536) == 0

    def test_float_division(self):
        assert runtime_binary("/", 1.0, 4.0) == 0.25

    def test_shift_ops(self):
        assert runtime_binary("<<", 1, 10) == 1024
        assert runtime_binary(">>", -8, 1) == -4  # arithmetic shift

    def test_unary(self):
        assert runtime_unary("-", 5) == -5
        assert runtime_unary("~", 0) == -1
        assert runtime_unary("!", False) is True


class TestRingBuffer:
    def test_fifo_order(self):
        buffer = RingBuffer(4, Counters())
        for value in (1, 2, 3):
            buffer.push(value)
        assert [buffer.pop() for _ in range(3)] == [1, 2, 3]

    def test_wraparound(self):
        buffer = RingBuffer(4, Counters())
        for round_ in range(5):
            buffer.push(round_)
            assert buffer.pop() == round_

    def test_peek_does_not_consume(self):
        buffer = RingBuffer(4, Counters())
        buffer.push(10)
        buffer.push(20)
        assert buffer.peek(1) == 20
        assert len(buffer) == 2

    def test_underflow_raises(self):
        buffer = RingBuffer(2, Counters())
        with pytest.raises(InterpError, match="underflow"):
            buffer.pop()

    def test_peek_underflow_raises(self):
        buffer = RingBuffer(2, Counters())
        buffer.push(1)
        with pytest.raises(InterpError, match="underflow"):
            buffer.peek(1)

    def test_counters_updated(self):
        counters = Counters()
        buffer = RingBuffer(4, counters)
        buffer.push(1)
        assert counters.token_transfers == 1
        assert counters.stores == 2  # token + write index
        buffer.pop()
        assert counters.loads >= 2


class TestFifoInterpreter:
    def test_deterministic_across_runs(self, demo_stream):
        first = demo_stream.run_fifo(6)
        second = demo_stream.run_fifo(6)
        assert first.outputs == second.outputs

    def test_seed_changes_outputs(self, demo_stream):
        base = demo_stream.run_fifo(6)
        other = demo_stream.run_fifo(6, seed=99)
        assert base.outputs != other.outputs

    def test_output_count_matches_schedule(self, demo_stream):
        iterations = 5
        result = demo_stream.run_fifo(iterations)
        per_iter = demo_stream.lower().program.prints_per_iteration
        assert len(result.outputs) == iterations * per_iter

    def test_steady_counters_linear_in_iterations(self, tiny_stream):
        short = tiny_stream.run_fifo(2)
        long = tiny_stream.run_fifo(4)
        assert long.steady_counters.total_ops == \
            2 * short.steady_counters.total_ops

    def test_rate_violation_detected(self):
        with pytest.raises(RateError, match="popped"):
            run_fifo(
                "float->float filter Bad() { work push 1 pop 2 "
                "{ push(pop()); } }"
                "void->void pipeline P { add Src(); add Bad(); "
                "add Snk(); }")

    def test_field_accesses_counted(self):
        result = run_fifo(
            "float->float filter S() { float g = 3.0; "
            "work push 1 pop 1 { push(pop() * g); } }"
            "void->void pipeline P { add Src(); add S(); add Snk(); }",
            iterations=1)
        assert result.steady_counters.loads > 0

    def test_helper_execution(self):
        result = run_fifo(
            "float->float filter H() { "
            "float sq(float x) { return x * x; } "
            "work push 1 pop 1 { push(sq(pop())); } }"
            "void->void pipeline P { add Src(); add H(); add Snk(); }",
            iterations=2)
        assert len(result.outputs) == 2
        assert all(v >= 0 for v in result.outputs)

    def test_int_program(self):
        stream = compile_source(
            "void->int filter C() { int n; init { n = 0; } "
            "work push 1 { push(n); n = n + 1; } }"
            "int->void filter P() { work pop 1 { println(pop()); } }"
            "void->void pipeline Top { add C(); add P(); }")
        result = stream.run_fifo(5)
        assert result.outputs == [0, 1, 2, 3, 4]

    def test_boolean_locals(self):
        stream = compile_source(
            "void->int filter C() { int n; init { n = 0; } work push 1 "
            "{ boolean even = n % 2 == 0; push(even ? 1 : 0); n = n + 1; } }"
            "int->void filter P() { work pop 1 { println(pop()); } }"
            "void->void pipeline Top { add C(); add P(); }")
        assert stream.run_fifo(4).outputs == [1, 0, 1, 0]

    def test_multidim_field(self):
        stream = compile_source(
            "void->float filter M() { float[2][3] m; int t; "
            "init { for (int i = 0; i < 2; i++) "
            "for (int j = 0; j < 3; j++) m[i][j] = i * 10 + j; t = 0; } "
            "work push 1 { push(m[t % 2][t % 3]); t = t + 1; } }"
            "float->void filter P() { work pop 1 { println(pop()); } }"
            "void->void pipeline Top { add M(); add P(); }")
        result = stream.run_fifo(6)
        assert result.outputs == [0.0, 11.0, 2.0, 10.0, 1.0, 12.0]


class TestLaminarInterpreter:
    def test_matches_fifo(self, demo_stream):
        fifo = demo_stream.run_fifo(8)
        laminar = demo_stream.run_laminar(8)
        assert fifo.outputs == laminar.outputs

    def test_fewer_total_ops(self, demo_stream):
        fifo = demo_stream.run_fifo(8)
        laminar = demo_stream.run_laminar(8)
        assert laminar.steady_counters.total_ops < \
            fifo.steady_counters.total_ops

    def test_memory_accesses_reduced(self, demo_stream):
        fifo = demo_stream.run_fifo(8)
        laminar = demo_stream.run_laminar(8)
        assert laminar.steady_counters.memory_accesses < \
            fifo.steady_counters.memory_accesses

    def test_undefined_value_detected(self):
        from repro.lir import Program, PrintOp, Temp
        from repro.frontend.types import FLOAT
        program = Program(name="bad")
        program.steady = [PrintOp(result=None, value=Temp(FLOAT))]
        with pytest.raises(InterpError, match="undefined value"):
            LaminarInterpreter(program).run(1)

    def test_iterations_zero(self, tiny_stream):
        result = tiny_stream.run_laminar(0)
        assert result.outputs == []

    def test_counters_snapshot_isolated(self, tiny_stream):
        result = tiny_stream.run_laminar(3)
        # steady counters exclude setup/init work
        assert result.steady_counters.total_ops <= \
            result.counters.total_ops


class TestCountersApi:
    def test_delta_since(self):
        counters = Counters()
        counters.alu = 5
        before = counters.snapshot()
        counters.alu = 9
        assert counters.delta_since(before).alu == 4

    def test_as_dict_roundtrip(self):
        counters = Counters(loads=1, stores=2, alu=3)
        values = counters.as_dict()
        assert values["loads"] == 1
        assert Counters(**values).stores == 2

    def test_memory_accesses_property(self):
        assert Counters(loads=3, stores=4).memory_accesses == 7

    def test_per_iteration(self, tiny_stream):
        result = tiny_stream.run_fifo(4)
        assert result.per_iteration("prints") == \
            result.steady_counters.prints / 4
