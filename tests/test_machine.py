"""Tests for the platform cost models, energy model, spill estimation and
the analytic communication metric."""

import pytest

from repro import compile_source
from repro.frontend.types import FLOAT
from repro.interp.counters import Counters
from repro.lir import BinOp, Program, Temp, const_float
from repro.machine import (CORTEX_A15, I7_2600K, OPTERON_6378, PLATFORMS,
                           XEON_PHI_3120A, communication_report,
                           estimate_spills, peak_live_values)

PREAMBLE = """
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
float->float filter Id() { work push 1 pop 1 { push(pop()); } }
"""


class TestCostModels:
    def test_four_platforms_registered(self):
        assert set(PLATFORMS) == {"i7-2600k", "opteron-6378",
                                  "xeon-phi-3120a", "cortex-a15"}

    def test_cycles_monotone_in_ops(self):
        light = Counters(alu=10)
        heavy = Counters(alu=10, loads=20, stores=20)
        for model in PLATFORMS.values():
            assert model.cycles(heavy) > model.cycles(light)

    def test_spills_add_memory_cycles(self):
        counters = Counters(alu=100)
        assert I7_2600K.cycles(counters, spills=10) > \
            I7_2600K.cycles(counters, spills=0)

    def test_seconds_uses_frequency(self):
        counters = Counters(alu=1000)
        fast = I7_2600K.seconds(counters)
        slow = XEON_PHI_3120A.seconds(counters)
        assert slow > fast

    def test_energy_positive(self):
        counters = Counters(alu=5, mul=2, loads=3, intrinsic=1)
        for model in PLATFORMS.values():
            assert model.energy_pj(counters) > 0

    def test_models_are_distinct(self):
        mixed = Counters(alu=100, mul=20, div=5, loads=50, stores=50,
                         intrinsic=3, branch=10)
        cycle_counts = {model.name: model.cycles(mixed)
                        for model in PLATFORMS.values()}
        assert len(set(cycle_counts.values())) == len(cycle_counts)

    def test_a15_has_fewer_registers(self):
        assert CORTEX_A15.registers < OPTERON_6378.registers


class TestLiveness:
    def test_peak_live_simple_chain(self):
        a, b, c = Temp(FLOAT), Temp(FLOAT), Temp(FLOAT)
        ops = [
            BinOp(result=a, op="+", lhs=const_float(1.0),
                  rhs=const_float(2.0)),
            BinOp(result=b, op="+", lhs=a, rhs=const_float(1.0)),
            BinOp(result=c, op="+", lhs=b, rhs=const_float(1.0)),
        ]
        assert peak_live_values(ops, [], [c]) <= 2

    def test_peak_live_wide_fanin(self):
        temps = [Temp(FLOAT) for _ in range(8)]
        ops = [BinOp(result=t, op="+", lhs=const_float(1.0),
                     rhs=const_float(2.0)) for t in temps]
        total = Temp(FLOAT)
        # one final op consuming the first two, all 8 live until the end
        ops.append(BinOp(result=total, op="+", lhs=temps[0],
                         rhs=temps[1]))
        peak = peak_live_values(ops, [], temps + [total])
        assert peak >= 8

    def test_spill_estimate_zero_for_tiny_program(self, tiny_stream):
        program = tiny_stream.lower().program
        assert estimate_spills(program, I7_2600K) == 0

    def test_spill_estimate_grows_with_small_register_file(self,
                                                           demo_stream):
        from dataclasses import replace
        program = demo_stream.lower().program
        small = replace(I7_2600K, registers=4)
        assert estimate_spills(program, small) >= \
            estimate_spills(program, I7_2600K)


class TestCommunication:
    def test_linear_pipeline_no_reduction(self):
        stream = compile_source(
            PREAMBLE + "void->void pipeline P { add Src(); add Id(); "
            "add Snk(); }")
        report = stream.communication()
        assert report.reduction == 0.0
        assert report.fifo_tokens == report.laminar_tokens == 2

    def test_duplicate_splitjoin_reduction(self):
        stream = compile_source(
            PREAMBLE + "void->void pipeline P { add Src(); add splitjoin { "
            "split duplicate; add Id(); add Id(); join roundrobin(1, 1); };"
            " add Snk(); }")
        report = stream.communication()
        # FIFO: src->split 1, split->branches 2, branches->join 2,
        # join->snk 2, snk has no output => 7 writes; laminar drops the
        # splitter (2) and joiner (2) writes.
        assert report.fifo_tokens == 7
        assert report.laminar_tokens == 3
        assert report.reduction == pytest.approx(4 / 7)

    def test_bytes_account_for_type(self):
        stream = compile_source(
            "void->int filter S() { work push 1 { push(randi(5)); } }"
            "int->void filter P() { work pop 1 { println(pop()); } }"
            "void->void pipeline Top { add S(); add P(); }")
        report = stream.communication()
        assert report.fifo_bytes == report.fifo_tokens * 4

    def test_float_bytes(self, tiny_stream):
        report = tiny_stream.communication()
        assert report.fifo_bytes == report.fifo_tokens * 8

    def test_reduction_in_unit_interval_for_suite(self):
        from repro.suite import benchmark_names, load_benchmark
        for name in ["dct", "autocor"]:
            report = load_benchmark(name).communication()
            assert 0.0 <= report.reduction < 1.0

    def test_report_is_pure_function_of_schedule(self, demo_stream):
        first = communication_report(demo_stream.schedule)
        second = communication_report(demo_stream.schedule)
        assert first == second
