"""The central correctness property (E8): for every program, the FIFO
baseline route and the LaminarIR route produce identical output streams,
under every combination of lowering/optimization options."""

import pytest

from repro import (LoweringOptions, OptOptions, check_equivalence,
                   compile_source)
from repro.suite import benchmark_names, load_benchmark

PREAMBLE = """
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
"""


def assert_equivalent(body, iterations=6, **kwargs):
    stream = compile_source(PREAMBLE + body)
    report = check_equivalence(stream, iterations=iterations, **kwargs)
    assert report.matches, (
        f"outputs diverge: {report.fifo.outputs[:5]} vs "
        f"{report.laminar.outputs[:5]}")
    return report


class TestConstructs:
    def test_identity(self):
        assert_equivalent(
            "void->void pipeline P { add Src(); add Snk(); }")

    def test_peeking(self):
        assert_equivalent(
            "float->float filter W() { work push 1 pop 1 peek 7 "
            "{ float s = 0; for (int i = 0; i < 7; i++) s += peek(i); "
            "push(s); pop(); } }"
            "void->void pipeline P { add Src(); add W(); add Snk(); }")

    def test_upsample_downsample(self):
        assert_equivalent(
            "float->float filter Up() { work push 3 pop 1 "
            "{ float v = pop(); push(v); push(v * 2); push(v * 3); } }"
            "float->float filter Down() { work push 1 pop 2 "
            "{ push(pop() + peek(0)); pop(); } }"
            "void->void pipeline P { add Src(); add Up(); add Down(); "
            "add Snk(); }")

    def test_duplicate_splitjoin(self):
        assert_equivalent(
            "float->float filter A() { work push 1 pop 1 "
            "{ push(pop() * 2); } }"
            "float->float filter B() { work push 1 pop 1 "
            "{ push(pop() + 1); } }"
            "void->void pipeline P { add Src(); add splitjoin { "
            "split duplicate; add A(); add B(); join roundrobin(1, 1); }; "
            "add Snk(); }")

    def test_weighted_roundrobin(self):
        assert_equivalent(
            "float->float filter Id() { work push 1 pop 1 "
            "{ push(pop()); } }"
            "void->void pipeline P { add Src(); add splitjoin { "
            "split roundrobin(2, 3); add Id(); add Id(); "
            "join roundrobin(2, 3); }; add Snk(); }")

    def test_nested_splitjoins(self):
        assert_equivalent(
            "float->float filter Id() { work push 1 pop 1 "
            "{ push(pop()); } }"
            "void->void pipeline P { add Src(); add splitjoin { "
            "split duplicate; add splitjoin { split roundrobin(1, 1); "
            "add Id(); add Id(); join roundrobin(1, 1); }; add Id(); "
            "join roundrobin(1, 1); }; add Snk(); }")

    def test_stateful_filter(self):
        assert_equivalent(
            "float->float filter IIR() { float s; init { s = 0; } "
            "work push 1 pop 1 { s = 0.7 * s + 0.3 * pop(); push(s); } }"
            "void->void pipeline P { add Src(); add IIR(); add Snk(); }")

    def test_prework_delay(self):
        assert_equivalent(
            "float->float filter D() { "
            "prework push 3 { push(0); push(0); push(0); } "
            "work push 1 pop 1 { push(pop()); } }"
            "void->void pipeline P { add Src(); add D(); add Snk(); }")

    def test_feedback_loop(self):
        assert_equivalent(
            "float->float filter Mix() { work push 2 pop 2 "
            "{ float a = pop(); float b = pop(); push(0.5 * a + 0.5 * b); "
            "push(a - 0.25 * b); } }"
            "float->float filter Damp() { work push 1 pop 1 "
            "{ push(pop() * 0.5); } }"
            "void->void pipeline P { add Src(); add feedbackloop { "
            "join roundrobin(1, 1); body Mix(); loop Damp(); "
            "split roundrobin(1, 1); enqueue 0.0; }; add Snk(); }")

    def test_int_bit_twiddling(self):
        stream = compile_source(
            "void->int filter S() { work push 1 { push(randi(65536)); } }"
            "int->int filter Twiddle() { work push 1 pop 1 "
            "{ int v = pop(); v = v ^ (v << 3); v = v & 262143; "
            "v = v | 5; v = ~v; push(v >> 1); } }"
            "int->void filter P() { work pop 1 { println(pop()); } }"
            "void->void pipeline Top { add S(); add Twiddle(); add P(); }")
        report = check_equivalence(stream, iterations=10)
        assert report.matches

    def test_dynamic_select(self):
        assert_equivalent(
            "float->float filter Clamp() { work push 1 pop 1 "
            "{ float v = pop(); push(v > 0.5 ? 0.5 : v); } }"
            "void->void pipeline P { add Src(); add Clamp(); add Snk(); }")

    def test_if_conversion_with_local_array(self):
        stream = compile_source(
            "void->int filter S() { work push 2 { push(randi(100)); "
            "push(randi(100)); } }"
            "int->int filter SortPair() { work push 2 pop 2 "
            "{ int[2] v; v[0] = pop(); v[1] = pop(); "
            "if (v[0] > v[1]) { int t = v[0]; v[0] = v[1]; v[1] = t; } "
            "push(v[0]); push(v[1]); } }"
            "int->void filter P() { work pop 1 { println(pop()); } }"
            "void->void pipeline Top { add S(); add SortPair(); add P(); }")
        report = check_equivalence(stream, iterations=10)
        assert report.matches
        # outputs must actually be sorted pairs
        outs = report.fifo.outputs
        for i in range(0, len(outs), 2):
            assert outs[i] <= outs[i + 1]

    def test_mixed_int_float_arithmetic(self):
        assert_equivalent(
            "float->float filter Mix() { work push 1 pop 1 "
            "{ int k = 3; float v = pop(); push(v * k + k / 2); } }"
            "void->void pipeline P { add Src(); add Mix(); add Snk(); }")

    def test_intrinsics(self):
        assert_equivalent(
            "float->float filter M() { work push 1 pop 1 "
            "{ float v = pop(); push(sqrt(abs(v)) + atan2(v, 2.0) "
            "+ min(v, 0.25) + pow(2.0, v) + fmod(v * 7, 1.3)); } }"
            "void->void pipeline P { add Src(); add M(); add Snk(); }")


class TestOptionMatrix:
    @pytest.mark.parametrize("opt", [
        OptOptions.none(),
        OptOptions(promote_state=False),
        OptOptions(cse=False),
        OptOptions(constant_folding=False),
        OptOptions(),
    ], ids=["none", "no-promote", "no-cse", "no-fold", "all"])
    def test_demo_under_opt_options(self, demo_stream, opt):
        report = check_equivalence(demo_stream, iterations=5, opt=opt)
        assert report.matches

    def test_no_splitjoin_elimination(self, demo_stream):
        report = check_equivalence(
            demo_stream, iterations=5,
            lowering=LoweringOptions(eliminate_splitjoin=False))
        assert report.matches


@pytest.mark.parametrize("name",
                         benchmark_names(include_extras=True))
class TestSuiteEquivalence:
    def test_benchmark(self, name):
        stream = load_benchmark(name)
        report = check_equivalence(stream, iterations=3)
        assert report.matches
        assert report.output_count > 0
