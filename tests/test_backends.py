"""Tests for the C backends and the native harness.

Generation tests always run; compile/execute tests are skipped when no C
compiler is available.
"""

import pytest

from repro import LoweringOptions, compile_source
from repro.backend import (FifoCodegenOptions, checksum_outputs,
                           compile_and_run, find_compiler, generate_fifo_c,
                           generate_laminar_c)
from repro.backend.common import (c_float_literal, c_int_literal,
                                  sanitize_ident)
from tests.conftest import requires_cc

PREAMBLE = """
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
"""


class TestLiterals:
    def test_float_roundtrip(self):
        for value in (0.0, -0.0, 1.5, 3.141592653589793, 1e300, 1e-300,
                      0.1):
            assert float(eval(c_float_literal(value))) == value

    def test_int_min(self):
        assert c_int_literal(-2147483648) == "(-2147483647 - 1)"

    def test_plain_ints(self):
        assert c_int_literal(42) == "42"
        assert c_int_literal(-7) == "-7"

    def test_special_floats(self):
        assert "0.0/0.0" in c_float_literal(float("nan"))
        assert c_float_literal(float("inf")) == "(1.0/0.0)"

    def test_sanitize(self):
        assert sanitize_ident("A.b-c") == "A_b_c"
        assert sanitize_ident("1x")[0] == "_"


class TestChecksum:
    def test_empty(self):
        assert checksum_outputs([]) == 1469598103934665603

    def test_order_sensitive(self):
        assert checksum_outputs([1.0, 2.0]) != checksum_outputs([2.0, 1.0])

    def test_int_float_distinct(self):
        assert checksum_outputs([1]) != checksum_outputs([1.0])

    def test_deterministic(self):
        values = [0.5, -1.25, 3]
        assert checksum_outputs(values) == checksum_outputs(values)


class TestGeneration:
    def test_fifo_c_structure(self, demo_stream):
        code = demo_stream.fifo_c()
        assert "repro_setup" in code
        assert "repro_steady" in code
        assert "_push(" in code
        assert "% " in code  # modulo wraparound by default

    def test_fifo_c_mask_option(self, demo_stream):
        code = demo_stream.fifo_c(FifoCodegenOptions(wraparound="mask"))
        assert "& " in code

    def test_laminar_c_structure(self, demo_stream):
        code = demo_stream.laminar_c()
        assert "repro_steady" in code
        assert "rotate loop-carried tokens" in code

    def test_laminar_c_has_no_buffers(self, demo_stream):
        code = demo_stream.laminar_c()
        assert "_buf[" not in code
        assert "_pop(" not in code

    def test_splitjoin_ablation_emits_moves(self, demo_stream):
        eliminated = demo_stream.laminar_c()
        kept = demo_stream.laminar_c(
            LoweringOptions(eliminate_splitjoin=False))
        # the ablation code is strictly larger (extra routing copies
        # survive copy propagation being disabled at the lowering level
        # only if the optimizer keeps them; sizes still differ because the
        # moves exist pre-optimization)
        assert len(kept) >= len(eliminated) * 0.5  # sanity, not strict


@requires_cc
class TestNativeExecution:
    def test_compiler_found(self):
        assert find_compiler() is not None

    def test_fifo_matches_interpreter(self, demo_stream, tmp_path):
        iterations = 10
        interp = demo_stream.run_fifo(iterations)
        native = compile_and_run(demo_stream.fifo_c(), iterations,
                                 print_outputs=True, workdir=tmp_path,
                                 name="fifo")
        assert native.outputs == pytest.approx(interp.outputs)
        assert native.checksum == checksum_outputs(interp.outputs)

    def test_laminar_matches_interpreter(self, demo_stream, tmp_path):
        iterations = 10
        interp = demo_stream.run_laminar(iterations)
        native = compile_and_run(demo_stream.laminar_c(), iterations,
                                 print_outputs=True, workdir=tmp_path,
                                 name="laminar")
        assert native.checksum == checksum_outputs(interp.outputs)

    def test_both_backends_agree(self, demo_stream, tmp_path):
        fifo = compile_and_run(demo_stream.fifo_c(), 20, workdir=tmp_path,
                               name="fifo")
        laminar = compile_and_run(demo_stream.laminar_c(), 20,
                                  workdir=tmp_path, name="laminar")
        assert fifo.checksum == laminar.checksum
        assert fifo.output_count == laminar.output_count

    def test_int_program_native(self, tmp_path):
        stream = compile_source(
            "void->int filter S() { work push 1 { push(randi(1000)); } }"
            "int->int filter M() { work push 1 pop 1 "
            "{ int v = pop(); push((v * 7 + 3) % 101); } }"
            "int->void filter P() { work pop 1 { println(pop()); } }"
            "void->void pipeline Top { add S(); add M(); add P(); }")
        interp = stream.run_fifo(15)
        native = compile_and_run(stream.laminar_c(), 15,
                                 print_outputs=True, workdir=tmp_path)
        assert native.outputs == interp.outputs

    def test_prework_native(self, tmp_path):
        stream = compile_source(
            PREAMBLE +
            "float->float filter D() { "
            "prework push 2 { push(0); push(0); } "
            "work push 1 pop 1 { push(pop()); } }"
            "void->void pipeline P { add Src(); add D(); add Snk(); }")
        interp = stream.run_fifo(6)
        fifo = compile_and_run(stream.fifo_c(), 6, print_outputs=True,
                               workdir=tmp_path, name="fifo")
        laminar = compile_and_run(stream.laminar_c(), 6,
                                  print_outputs=True, workdir=tmp_path,
                                  name="laminar")
        assert fifo.outputs == pytest.approx(interp.outputs)
        assert fifo.checksum == laminar.checksum

    def test_timing_mode_reports_seconds(self, tiny_stream, tmp_path):
        native = compile_and_run(tiny_stream.laminar_c(), 1000,
                                 workdir=tmp_path)
        assert native.seconds >= 0.0
        assert native.output_count == 1000


@requires_cc
class TestRunnerErrors:
    def test_compile_error_surfaces_diagnostics(self, tmp_path):
        from repro.backend.runner import NativeToolchainError, compile_c
        with pytest.raises(NativeToolchainError, match="compilation "
                                                       "failed"):
            compile_c("int main(void) { return undeclared; }",
                      workdir=tmp_path, name="broken")

    def test_workdir_created(self, tmp_path):
        from repro.backend.runner import compile_c
        nested = tmp_path / "a" / "b"
        binary = compile_c("int main(void) { return 0; }",
                           workdir=nested, name="ok")
        assert binary.exists()

    def test_nonzero_exit_reported(self, tmp_path):
        from repro.backend.runner import (NativeToolchainError, compile_c,
                                          run_binary)
        binary = compile_c("int main(void) { return 3; }",
                           workdir=tmp_path, name="exit3")
        with pytest.raises(NativeToolchainError, match="exit 3"):
            run_binary(binary, 1)
