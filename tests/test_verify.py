"""Tests for the LaminarIR verifier and the DOT exporter."""

import pytest

from repro import compile_source
from repro.frontend.types import FLOAT, INT
from repro.graph import to_dot
from repro.lir import (BinOp, LoadOp, PrintOp, Program, StateSlot, StoreOp,
                       Temp, VerificationError, const_float, const_int,
                       verify)
from repro.suite import load_benchmark


class TestVerifier:
    def test_valid_programs_pass(self, demo_stream):
        verify(demo_stream.lower().program)

    def test_suite_programs_pass(self):
        for name in ("fft", "bitonic_sort", "fm_radio"):
            verify(load_benchmark(name).lower().program)

    def test_use_before_def(self):
        program = Program(name="bad")
        dangling = Temp(FLOAT)
        program.steady = [PrintOp(result=None, value=dangling)]
        with pytest.raises(VerificationError, match="undefined value"):
            verify(program)

    def test_double_definition(self):
        program = Program(name="bad")
        t = Temp(INT)
        op1 = BinOp(result=t, op="+", lhs=const_int(1), rhs=const_int(2))
        op2 = BinOp(result=t, op="+", lhs=const_int(3), rhs=const_int(4))
        program.steady = [op1, op2]
        with pytest.raises(VerificationError, match="defined twice"):
            verify(program)

    def test_unknown_slot(self):
        program = Program(name="bad")
        rogue = StateSlot("ghost", FLOAT)
        program.steady = [StoreOp(result=None, slot=rogue,
                                  value=const_float(1.0))]
        with pytest.raises(VerificationError, match="unknown state slot"):
            verify(program)

    def test_indexed_scalar_access(self):
        program = Program(name="bad")
        slot = StateSlot("s", FLOAT)
        program.state_slots = [slot]
        program.steady = [StoreOp(result=None, slot=slot,
                                  index=const_int(0),
                                  value=const_float(1.0))]
        with pytest.raises(VerificationError, match="indexed access"):
            verify(program)

    def test_constant_index_bounds(self):
        program = Program(name="bad")
        slot = StateSlot("arr", FLOAT, size=4)
        program.state_slots = [slot]
        program.steady = [LoadOp(result=Temp(FLOAT), slot=slot,
                                 index=const_int(9))]
        with pytest.raises(VerificationError, match="out of bounds"):
            verify(program)

    def test_carry_length_mismatch(self):
        program = Program(name="bad")
        program.carry_params = [Temp(FLOAT)]
        program.carry_inits = []
        program.carry_nexts = []
        with pytest.raises(VerificationError, match="mismatched lengths"):
            verify(program)

    def test_steady_cannot_feed_init(self):
        # carry inits must come from setup/init, never from steady temps
        program = Program(name="bad")
        late = Temp(FLOAT)
        program.steady = [BinOp(result=late, op="+",
                                lhs=const_float(1.0),
                                rhs=const_float(2.0))]
        program.carry_params = [Temp(FLOAT)]
        program.carry_inits = [late]
        program.carry_nexts = [program.carry_params[0]]
        with pytest.raises(VerificationError, match="undefined value"):
            verify(program)

    def test_verifier_runs_after_every_opt_config(self, demo_stream):
        from repro.opt import OptOptions
        for opt in (OptOptions.none(), OptOptions(),
                    OptOptions(promote_state=False)):
            verify(demo_stream.lower(opt=opt).program)


class TestDot:
    def test_structure(self, demo_stream):
        dot = to_dot(demo_stream.graph, demo_stream.schedule.reps)
        assert dot.startswith('digraph "Demo"')
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == len(demo_stream.graph.channels)
        assert "shape=box" in dot
        assert "shape=triangle" in dot  # the splitter

    def test_repetition_annotations(self, demo_stream):
        dot = to_dot(demo_stream.graph, demo_stream.schedule.reps)
        assert "x2" in dot or "x1" in dot

    def test_feedback_edge_dashed(self):
        stream = compile_source("""
            void->float filter Src() { work push 1 { push(randf()); } }
            float->void filter Snk() { work pop 1 { println(pop()); } }
            float->float filter Mix() { work push 2 pop 2 {
              float a = pop(); float b = pop();
              push(a + b); push(a - b); } }
            float->float filter Id() { work push 1 pop 1 { push(pop()); } }
            void->void pipeline P {
              add Src();
              add feedbackloop { join roundrobin(1, 1); body Mix();
                loop Id(); split roundrobin(1, 1); enqueue 0.0; };
              add Snk();
            }""")
        dot = to_dot(stream.graph)
        assert "style=dashed" in dot
        assert "1 init" in dot

    def test_names_escaped(self, demo_stream):
        dot = to_dot(demo_stream.graph)
        # labels are well-formed quoted strings: even number of quotes
        assert dot.count('"') % 2 == 0
