"""Tests for the optimizer passes, both on hand-built IR and end to end."""

import pytest

from repro import compile_source
from repro.frontend.types import FLOAT, INT
from repro.interp import LaminarInterpreter
from repro.lir import (BinOp, CallOp, LoadOp, MoveOp, PrintOp, Program,
                       StateSlot, StoreOp, Temp, const_float, const_int)
from repro.opt import (OptOptions, common_subexpression_elimination,
                       constant_folding, copy_propagation,
                       dead_code_elimination, optimize, promote_state)

PREAMBLE = """
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
"""


def make_program():
    return Program(name="test")


class TestCopyPropagation:
    def test_move_forwarded(self):
        program = make_program()
        a = Temp(FLOAT)
        b = Temp(FLOAT)
        program.steady = [
            CallOp(result=a, name="randf", args=[], pure=False),
            MoveOp(result=b, src=a),
            PrintOp(result=None, value=b),
        ]
        removed = copy_propagation(program)
        assert removed == 1
        assert isinstance(program.steady[-1], PrintOp)
        assert program.steady[-1].value is a

    def test_move_chain(self):
        program = make_program()
        a, b, c = Temp(FLOAT), Temp(FLOAT), Temp(FLOAT)
        program.steady = [
            CallOp(result=a, name="randf", args=[], pure=False),
            MoveOp(result=b, src=a),
            MoveOp(result=c, src=b),
            PrintOp(result=None, value=c),
        ]
        copy_propagation(program)
        assert program.steady[-1].value is a

    def test_carry_lists_rewritten(self):
        program = make_program()
        a, b = Temp(FLOAT), Temp(FLOAT)
        program.init = [
            CallOp(result=a, name="randf", args=[], pure=False),
            MoveOp(result=b, src=a),
        ]
        program.carry_params = [Temp(FLOAT)]
        program.carry_inits = [b]
        program.carry_nexts = [program.carry_params[0]]
        copy_propagation(program)
        assert program.carry_inits == [a]


class TestConstantFolding:
    def test_binop_folds(self):
        program = make_program()
        t = Temp(INT)
        program.steady = [
            BinOp(result=t, op="+", lhs=const_int(2), rhs=const_int(3)),
            PrintOp(result=None, value=t),
        ]
        folded = constant_folding(program)
        assert folded == 1
        assert program.steady[0].value.value == 5

    def test_fold_cascades(self):
        program = make_program()
        a, b = Temp(INT), Temp(INT)
        program.steady = [
            BinOp(result=a, op="*", lhs=const_int(4), rhs=const_int(5)),
            BinOp(result=b, op="-", lhs=a, rhs=const_int(1)),
            PrintOp(result=None, value=b),
        ]
        constant_folding(program)
        assert program.steady[0].value.value == 19

    def test_int_wraparound(self):
        program = make_program()
        t = Temp(INT)
        program.steady = [
            BinOp(result=t, op="*", lhs=const_int(2 ** 30),
                  rhs=const_int(4)),
            PrintOp(result=None, value=t),
        ]
        constant_folding(program)
        assert program.steady[0].value.value == 0

    def test_algebraic_mul_one(self):
        program = make_program()
        a, b = Temp(FLOAT), Temp(FLOAT)
        program.steady = [
            CallOp(result=a, name="randf", args=[], pure=False),
            BinOp(result=b, op="*", lhs=a, rhs=const_float(1.0)),
            PrintOp(result=None, value=b),
        ]
        constant_folding(program)
        assert program.steady[-1].value is a

    def test_float_add_zero_not_folded(self):
        # x + 0.0 is not an identity for IEEE -0.0; must stay.
        program = make_program()
        a, b = Temp(FLOAT), Temp(FLOAT)
        program.steady = [
            CallOp(result=a, name="randf", args=[], pure=False),
            BinOp(result=b, op="+", lhs=a, rhs=const_float(0.0)),
            PrintOp(result=None, value=b),
        ]
        constant_folding(program)
        assert isinstance(program.steady[1], BinOp)

    def test_int_add_zero_folded(self):
        program = make_program()
        a, b = Temp(INT), Temp(INT)
        program.steady = [
            CallOp(result=a, name="randi", args=[const_int(5)],
                   pure=False),
            BinOp(result=b, op="+", lhs=a, rhs=const_int(0)),
            PrintOp(result=None, value=b),
        ]
        constant_folding(program)
        assert program.steady[-1].value is a

    def test_pure_intrinsic_folds(self):
        program = make_program()
        t = Temp(FLOAT)
        program.steady = [
            CallOp(result=t, name="sqrt", args=[const_float(4.0)],
                   pure=True),
            PrintOp(result=None, value=t),
        ]
        constant_folding(program)
        assert program.steady[0].value.value == 2.0

    def test_impure_call_never_folds(self):
        program = make_program()
        t = Temp(FLOAT)
        program.steady = [
            CallOp(result=t, name="randf", args=[], pure=False),
            PrintOp(result=None, value=t),
        ]
        folded = constant_folding(program)
        assert folded == 0
        assert isinstance(program.steady[0], CallOp)


class TestCSE:
    def test_duplicate_binop_removed(self):
        program = make_program()
        a = Temp(FLOAT)
        x, y = Temp(FLOAT), Temp(FLOAT)
        program.steady = [
            CallOp(result=a, name="randf", args=[], pure=False),
            BinOp(result=x, op="*", lhs=a, rhs=a),
            BinOp(result=y, op="*", lhs=a, rhs=a),
            PrintOp(result=None, value=x),
            PrintOp(result=None, value=y),
        ]
        removed = common_subexpression_elimination(program)
        assert removed == 1
        assert program.steady[-1].value is x

    def test_commutative_matching(self):
        program = make_program()
        a, b = Temp(FLOAT), Temp(FLOAT)
        x, y = Temp(FLOAT), Temp(FLOAT)
        program.steady = [
            CallOp(result=a, name="randf", args=[], pure=False),
            CallOp(result=b, name="randf", args=[], pure=False),
            BinOp(result=x, op="+", lhs=a, rhs=b),
            BinOp(result=y, op="+", lhs=b, rhs=a),
            PrintOp(result=None, value=x),
            PrintOp(result=None, value=y),
        ]
        assert common_subexpression_elimination(program) == 1

    def test_noncommutative_not_swapped(self):
        program = make_program()
        a, b = Temp(FLOAT), Temp(FLOAT)
        x, y = Temp(FLOAT), Temp(FLOAT)
        program.steady = [
            CallOp(result=a, name="randf", args=[], pure=False),
            CallOp(result=b, name="randf", args=[], pure=False),
            BinOp(result=x, op="-", lhs=a, rhs=b),
            BinOp(result=y, op="-", lhs=b, rhs=a),
            PrintOp(result=None, value=x),
            PrintOp(result=None, value=y),
        ]
        assert common_subexpression_elimination(program) == 0

    def test_load_cse_respects_stores(self):
        slot = StateSlot("s", FLOAT)
        program = make_program()
        program.state_slots = [slot]
        l1, l2, l3 = Temp(FLOAT), Temp(FLOAT), Temp(FLOAT)
        program.steady = [
            LoadOp(result=l1, slot=slot),
            LoadOp(result=l2, slot=slot),      # dedupes with l1
            StoreOp(result=None, slot=slot, value=const_float(1.0)),
            LoadOp(result=l3, slot=slot),      # must NOT dedupe
            PrintOp(result=None, value=l1),
            PrintOp(result=None, value=l2),
            PrintOp(result=None, value=l3),
        ]
        removed = common_subexpression_elimination(program)
        assert removed == 1
        loads = [op for op in program.steady if isinstance(op, LoadOp)]
        assert len(loads) == 2

    def test_impure_calls_not_deduped(self):
        program = make_program()
        a, b = Temp(FLOAT), Temp(FLOAT)
        program.steady = [
            CallOp(result=a, name="randf", args=[], pure=False),
            CallOp(result=b, name="randf", args=[], pure=False),
            PrintOp(result=None, value=a),
            PrintOp(result=None, value=b),
        ]
        assert common_subexpression_elimination(program) == 0


class TestDCE:
    def test_unused_pure_op_removed(self):
        program = make_program()
        dead = Temp(FLOAT)
        program.steady = [
            BinOp(result=dead, op="+", lhs=const_float(1.0),
                  rhs=const_float(2.0)),
        ]
        assert dead_code_elimination(program) == 1
        assert program.steady == []

    def test_print_is_root(self):
        program = make_program()
        t = Temp(FLOAT)
        program.steady = [
            BinOp(result=t, op="+", lhs=const_float(1.0),
                  rhs=const_float(2.0)),
            PrintOp(result=None, value=t),
        ]
        assert dead_code_elimination(program) == 0

    def test_carry_values_are_roots(self):
        program = make_program()
        t = Temp(FLOAT)
        program.init = [
            BinOp(result=t, op="+", lhs=const_float(1.0),
                  rhs=const_float(2.0)),
        ]
        program.carry_params = [Temp(FLOAT)]
        program.carry_inits = [t]
        program.carry_nexts = [program.carry_params[0]]
        assert dead_code_elimination(program) == 0

    def test_store_to_unread_slot_removed(self):
        slot = StateSlot("dead_slot", FLOAT)
        program = make_program()
        program.state_slots = [slot]
        program.steady = [
            StoreOp(result=None, slot=slot, value=const_float(1.0)),
        ]
        assert dead_code_elimination(program) == 1
        assert program.state_slots == []

    def test_transitive_liveness_across_sections(self):
        program = make_program()
        a = Temp(FLOAT)
        program.setup = [
            BinOp(result=a, op="*", lhs=const_float(2.0),
                  rhs=const_float(3.0)),
        ]
        program.steady = [PrintOp(result=None, value=a)]
        assert dead_code_elimination(program) == 0
        assert len(program.setup) == 1


class TestPromotion:
    def test_scalar_state_promoted(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter Acc() { float s; "
            "work push 1 pop 1 { s = s + pop(); push(s); } }"
            "void->void pipeline P { add Src(); add Acc(); add Snk(); }")
        lowered = stream.lower()
        assert lowered.opt_stats.slots_promoted >= 1
        assert lowered.program.state_slots == []

    def test_readonly_table_folds_to_constants(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter T() { float[4] t; "
            "init { for (int i = 0; i < 4; i++) t[i] = i + 1.0; } "
            "work push 1 pop 1 { push(pop() * t[2]); } }"
            "void->void pipeline P { add Src(); add T(); add Snk(); }")
        program = stream.lower().program
        loads = [op for op in program.steady
                 if isinstance(op, LoadOp)]
        assert loads == []
        muls = [op for op in program.steady
                if isinstance(op, BinOp) and op.op == "*"]
        assert any(getattr(op.rhs, "value", None) == 3.0 for op in muls)

    def test_dynamic_index_blocks_promotion(self):
        stream = compile_source(
            PREAMBLE.replace("randf()", "randf()") +
            "void->int filter ISrc() { work push 1 { push(randi(4)); } }"
            "int->float filter T() { float[4] t; "
            "init { for (int i = 0; i < 4; i++) t[i] = i * 1.5; } "
            "work push 1 pop 1 { push(t[pop()]); } }"
            "void->void pipeline P { add ISrc(); add T(); add Snk(); }")
        program = stream.lower().program
        assert len(program.state_slots) == 1

    def test_promotion_preserves_semantics(self):
        source = (
            PREAMBLE +
            "float->float filter Acc() { float s; float[3] h; "
            "init { s = 1; for (int i = 0; i < 3; i++) h[i] = 0; } "
            "work push 1 pop 1 { h[2] = h[1]; h[1] = h[0]; h[0] = pop(); "
            "s = s * 0.9 + h[2]; push(s); } }"
            "void->void pipeline P { add Src(); add Acc(); add Snk(); }")
        stream = compile_source(source)
        with_promo = stream.run_laminar(12, opt=OptOptions())
        without = stream.run_laminar(
            12, opt=OptOptions(promote_state=False))
        assert with_promo.outputs == without.outputs

    def test_promotion_moves_memory_to_zero(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter Acc() { float s; "
            "work push 1 pop 1 { s = s + pop(); push(s); } }"
            "void->void pipeline P { add Src(); add Acc(); add Snk(); }")
        result = stream.run_laminar(5)
        assert result.steady_counters.memory_accesses == 0


class TestPipelineIntegration:
    def test_optimize_reports_sizes(self, demo_stream):
        stats = demo_stream.lower().opt_stats
        assert stats.ops_before["steady"] >= stats.ops_after["steady"]
        assert 0.0 <= stats.steady_reduction <= 1.0

    def test_optimize_none_is_identity(self, demo_stream):
        baseline = demo_stream.run_laminar(6, opt=OptOptions.none())
        optimized = demo_stream.run_laminar(6, opt=OptOptions())
        assert baseline.outputs == optimized.outputs
        assert optimized.steady_counters.total_ops <= \
            baseline.steady_counters.total_ops

    def test_fixpoint_idempotent(self, demo_stream):
        lowered = demo_stream.lower()
        size_once = len(lowered.program.steady)
        second = optimize(lowered.program)
        assert len(lowered.program.steady) == size_once
        assert second.ops_folded == 0
        assert second.ops_removed_dead == 0

    def test_fixpoint_converges(self, demo_stream):
        stats = demo_stream.lower().opt_stats
        assert stats.converged
        assert 1 <= stats.fixpoint_rounds <= 64

    def test_fixpoint_converges_on_suite_benchmarks(self):
        from repro.suite import load_benchmark
        for name in ("lattice", "autocor"):
            stats = load_benchmark(name).lower().opt_stats
            assert stats.converged, name
            assert stats.fixpoint_rounds >= 1

    def test_disabled_pipeline_converges_in_one_round(self):
        stream = compile_source(
            PREAMBLE + "void->void pipeline P { add Src(); add Snk(); }")
        stats = stream.lower(opt=OptOptions.none()).opt_stats
        assert stats.converged
        assert stats.fixpoint_rounds == 1

    def test_nonconvergence_warns_and_flags(self, demo_stream,
                                            monkeypatch):
        import repro.opt.pipeline as pipeline_mod
        # Cap the loop at one round so a program that still has work to
        # do after round 1 exercises the give-up path.
        monkeypatch.setattr(pipeline_mod, "_FIXPOINT_ROUNDS", 1)
        from repro.lir import lower
        program = lower(demo_stream.schedule, demo_stream.source)
        # Re-rolling collapses the cross-instance redundancy that keeps
        # CSE busy past round 1, so pin it off to reach the give-up path.
        with pytest.warns(RuntimeWarning, match="did not reach a fixpoint"):
            stats = optimize(program, OptOptions(reroll=False))
        assert not stats.converged
        assert stats.fixpoint_rounds == 1


class TestPressureScheduling:
    def test_outputs_preserved(self, demo_stream):
        with_sched = demo_stream.run_laminar(6, opt=OptOptions())
        without = demo_stream.run_laminar(
            6, opt=OptOptions(schedule_pressure=False))
        assert with_sched.outputs == without.outputs

    def test_never_increases_peak_liveness(self):
        from repro.machine import peak_live_values
        from repro.suite import load_benchmark
        for name in ("autocor", "matrixmult", "dct"):
            stream = load_benchmark(name)
            before = stream.lower(
                opt=OptOptions(schedule_pressure=False)).program
            after = stream.lower(opt=OptOptions()).program
            live_out_b = [v for v in before.carry_nexts
                          if hasattr(v, "id")]
            live_out_a = [v for v in after.carry_nexts
                          if hasattr(v, "id")]
            peak_before = peak_live_values(before.steady,
                                           before.carry_params, live_out_b)
            peak_after = peak_live_values(after.steady,
                                          after.carry_params, live_out_a)
            assert peak_after <= peak_before, name

    def test_effect_order_preserved(self, demo_stream):
        from repro.lir import PrintOp, StoreOp, CallOp
        before = demo_stream.lower(
            opt=OptOptions(schedule_pressure=False)).program
        after = demo_stream.lower(opt=OptOptions()).program

        def effects(program):
            out = []
            for op in program.steady:
                if isinstance(op, (PrintOp, StoreOp)) or \
                        (isinstance(op, CallOp) and not op.pure):
                    out.append(type(op).__name__)
            return out

        assert effects(before) == effects(after)

    def test_verifier_accepts_scheduled(self, demo_stream):
        from repro.lir import verify
        verify(demo_stream.lower(opt=OptOptions()).program)


class TestDeadCarryElimination:
    def test_unused_history_removed(self):
        from repro.opt.carries import eliminate_dead_carries
        stream = compile_source(
            PREAMBLE +
            "float->float filter Drop() { work push 1 pop 3 peek 5 { "
            "push(peek(4)); pop(); pop(); pop(); } }"
            "void->void pipeline P { add Src(); add Drop(); add Snk(); }")
        program = stream.lower().program
        assert program.carry_params == []

    def test_live_chain_kept(self):
        # peek(0) reads the oldest carried token: the whole rotation chain
        # is live and nothing may be removed
        stream = compile_source(
            PREAMBLE +
            "float->float filter Old() { work push 1 pop 1 peek 4 { "
            "push(peek(0) + peek(3)); pop(); } }"
            "void->void pipeline P { add Src(); add Old(); add Snk(); }")
        program = stream.lower().program
        assert len(program.carry_params) == 3

    def test_fresh_only_window_fully_eliminated(self):
        # peek(2) with window 3 always reads the token pushed *this*
        # iteration, so every carried position is dead
        stream = compile_source(
            PREAMBLE +
            "float->float filter Mid() { work push 1 pop 1 peek 3 { "
            "push(peek(2)); pop(); } }"
            "void->void pipeline P { add Src(); add Mid(); add Snk(); }")
        program = stream.lower().program
        assert program.carry_params == []
        assert stream.run_laminar(6).outputs == stream.run_fifo(6).outputs

    def test_partially_dead_window(self):
        # peek(1) reads one carried position; the other is dead
        stream = compile_source(
            PREAMBLE +
            "float->float filter Mid() { work push 1 pop 1 peek 3 { "
            "push(peek(1)); pop(); } }"
            "void->void pipeline P { add Src(); add Mid(); add Snk(); }")
        program = stream.lower().program
        assert len(program.carry_params) == 1
        assert stream.run_laminar(6).outputs == stream.run_fifo(6).outputs


class TestPassManagerConfig:
    """The pass-pipeline and round-cap knobs added with the pass manager."""

    def test_parse_pipeline_resolves_aliases(self):
        from repro.opt import parse_pipeline
        assert parse_pipeline("cp,promote,fold,cse,dce") == (
            "copy_propagation", "promote_state", "constant_folding",
            "common_subexpression_elimination", "dead_code_elimination")

    def test_parse_pipeline_rejects_unknown_pass(self):
        from repro.opt import parse_pipeline
        with pytest.raises(ValueError, match="unknown optimizer pass"):
            parse_pipeline("cp,frobnicate")

    def test_pipeline_assignment_coerces_and_validates(self):
        # Every assignment path normalizes to a canonical tuple[str,...]
        # via parse_pipeline: strings, lists, tuples, generators.
        canonical = ("constant_folding",
                     "common_subexpression_elimination")
        assert OptOptions(pipeline="fold,cse").pipeline == canonical
        assert OptOptions(pipeline=["fold", "cse"]).pipeline == canonical
        options = OptOptions()
        options.pipeline = (name for name in ("fold", "cse"))
        assert options.pipeline == canonical
        options.pipeline = None
        assert options.pipeline is None

    def test_pipeline_assignment_rejects_bad_values(self):
        with pytest.raises(ValueError, match="unknown optimizer pass"):
            OptOptions(pipeline=["fold", "frobnicate"])
        with pytest.raises(TypeError, match="iterable of pass names"):
            OptOptions(pipeline=42)

    def test_explicit_pipeline_runs_exactly_those_passes(self, demo_stream):
        from repro.lir import lower
        program = lower(demo_stream.schedule, demo_stream.source)
        stats = optimize(program, OptOptions(
            pipeline=("cp", "fold", "dce")))
        names = {stat.name for stat in stats.pass_stats}
        assert "copy_propagation" in names
        assert "promote_state" not in names
        assert "common_subexpression_elimination" not in names
        assert "schedule_for_pressure" not in names

    def test_custom_pipeline_preserves_outputs(self, demo_stream):
        base = demo_stream.run_laminar(6)
        alt = demo_stream.run_laminar(6, opt=OptOptions(
            pipeline=("dce", "fold", "cse", "carry", "dce", "schedule")))
        assert base.outputs == alt.outputs

    def test_max_rounds_caps_fixpoint(self, demo_stream):
        from repro.lir import lower
        program = lower(demo_stream.schedule, demo_stream.source)
        # reroll=False: the re-rolled demo converges within one round.
        with pytest.warns(RuntimeWarning, match="did not reach a fixpoint"):
            stats = optimize(program,
                             OptOptions(max_rounds=1, reroll=False))
        assert stats.fixpoint_rounds == 1
        assert not stats.converged

    def test_max_rounds_default_matches_module_cap(self, demo_stream):
        stats = demo_stream.lower().opt_stats
        assert stats.converged
        assert stats.fixpoint_rounds <= 64

    def test_pass_stats_reported_in_first_run_order(self, demo_stream):
        stats = demo_stream.lower().opt_stats
        names = [stat.name for stat in stats.pass_stats]
        assert names[0] == "dead_code_elimination"  # the dense pre-prune
        assert "copy_propagation" in names
        assert all(stat.runs >= 1 for stat in stats.pass_stats)
        folded = sum(stat.changes for stat in stats.pass_stats
                     if stat.name == "constant_folding")
        assert folded == stats.ops_folded


class TestSuiteIdempotence:
    """Optimizing an already-optimized program must change nothing."""

    def test_every_suite_program(self):
        from repro.suite import benchmark_names, load_benchmark
        for name in benchmark_names(include_extras=True):
            lowered = load_benchmark(name).lower()
            sizes = {title: len(ops)
                     for title, ops in lowered.program.sections()}
            second = optimize(lowered.program)
            after = {title: len(ops)
                     for title, ops in lowered.program.sections()}
            assert after == sizes, name
            assert second.converged, name
            for stat in second.pass_stats:
                assert stat.changes == 0, (name, stat.name)
