"""The persistent artifact cache: keys, publish/lookup, GC, quarantine."""

from __future__ import annotations

import json
import os
import stat

import pytest

from repro import OptOptions, compile_source
from repro.api import options_fingerprint
from repro.cache import (ArtifactCache, artifact_key, cache_dir,
                         codegen_fingerprint, ensure_native, native_key,
                         run_native_cached)
from repro.cache.store import LAST_USED_NAME, META_NAME
from repro.lir import LoweringOptions

from .conftest import TINY_PROGRAM, requires_cc


def _components(n: int = 0) -> dict:
    return {"spec_sha256": f"spec{n}", "options": "()",
            "backend": "laminar-c", "compiler": "cc 1.0",
            "cflags": "-O3", "codegen": "laminar-c/1+abc"}


class TestKeys:
    def test_key_is_deterministic(self):
        assert artifact_key(_components()) == artifact_key(_components())

    def test_key_ignores_dict_order(self):
        shuffled = dict(reversed(list(_components().items())))
        assert artifact_key(shuffled) == artifact_key(_components())

    def test_key_changes_with_any_component(self):
        base = artifact_key(_components())
        for field in _components():
            bumped = _components()
            bumped[field] = bumped[field] + "x"
            assert artifact_key(bumped) != base, field

    def test_options_fingerprint_distinguishes_pipelines(self):
        default = options_fingerprint()
        explicit = options_fingerprint(
            None, OptOptions(pipeline=("constant_folding", "cse")))
        none = options_fingerprint(None, OptOptions.none())
        assert len({default, explicit, none}) == 3

    def test_options_fingerprint_accepts_list_pipeline(self):
        # The satellite bug: list-valued options used to raise
        # "unhashable type" in _options_key.
        opt = OptOptions(pipeline=["fold", "cse"])
        assert options_fingerprint(None, opt) == options_fingerprint(
            None, OptOptions(pipeline=("constant_folding", "cse")))

    def test_native_key_components(self, tiny_stream):
        key, components = native_key(tiny_stream)
        assert key == artifact_key(components)
        assert components["spec_sha256"] == tiny_stream.source_hash
        assert components["backend"] == "laminar-c"
        assert components["codegen"] == codegen_fingerprint("laminar-c")

    def test_codegen_fingerprints_differ_per_backend(self):
        assert codegen_fingerprint("laminar-c") != \
            codegen_fingerprint("fifo-c")
        with pytest.raises(ValueError):
            codegen_fingerprint("jit")

    def test_codegen_version_bump_invalidates(self, tiny_stream,
                                              tmp_path, monkeypatch):
        """A CODEGEN_VERSION bump must *miss* (never corrupt or reuse):
        the stale artifact stays intact under its old key and becomes
        GC-eligible, while the new generator gets a fresh slot."""
        import repro.backend.laminar_c as laminar_c

        cache = ArtifactCache(tmp_path, max_bytes=0)
        monkeypatch.setattr(laminar_c, "CODEGEN_VERSION", 1)
        old_key, old_components = native_key(tiny_stream)
        cache.publish(old_key, old_components,
                      {"prog.c": "/* built by codegen v1 */"})

        monkeypatch.setattr(laminar_c, "CODEGEN_VERSION", 2)
        new_key, new_components = native_key(tiny_stream)
        assert new_key != old_key
        assert new_components["codegen"] != old_components["codegen"]
        # New generator misses; the old bundle is untouched.
        assert cache.lookup(new_key) is None
        stale = cache.lookup(old_key)
        assert stale is not None
        assert stale.artifact("prog.c").read_text() \
            == "/* built by codegen v1 */"
        # The orphaned entry is ordinary LRU fodder once a new build
        # is published and protected.
        cache.publish(new_key, new_components,
                      {"prog.c": "/* built by codegen v2 */"})
        result = cache.gc(max_bytes=0, protect=new_key)
        assert result["evicted"] >= 1
        assert cache.lookup(old_key) is None
        assert cache.lookup(new_key) is not None

    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert cache_dir() == tmp_path / "alt"
        assert ArtifactCache().root == tmp_path / "alt"


class TestStore:
    def test_miss_then_publish_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = artifact_key(_components())
        assert cache.lookup(key) is None
        cache.publish(key, _components(), {"prog.c": "int main;"})
        entry = cache.lookup(key)
        assert entry is not None
        assert entry.artifact("prog.c").read_text() == "int main;"
        assert entry.components == _components()

    def test_publish_is_atomic_no_partials_visible(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = artifact_key(_components())
        cache.publish(key, _components(), {"a.txt": "a", "b.txt": "b"})
        # Everything under objects/ validates; tmp/ holds no leftovers.
        assert not list(cache.tmp_dir.iterdir()) \
            if cache.tmp_dir.is_dir() else True
        entry = cache.lookup(key)
        assert sorted(entry.meta["artifacts"]) == [
            "a.txt", "b.txt"]

    def test_publish_race_loser_adopts_winner(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = artifact_key(_components())
        first = cache.publish(key, _components(), {"x": "winner"})
        second = cache.publish(key, _components(), {"x": "loser"})
        assert second.artifact("x").read_text() == "winner"
        assert first.path == second.path

    def test_path_artifact_preserves_exec_bit(self, tmp_path):
        source = tmp_path / "bin"
        source.write_bytes(b"\x7fELF")
        source.chmod(0o755)
        cache = ArtifactCache(tmp_path / "cache")
        key = artifact_key(_components())
        entry = cache.publish(key, _components(), {"prog": source},
                              meta={"binary": "prog"})
        assert entry.binary.read_bytes() == b"\x7fELF"
        assert stat.S_IMODE(entry.binary.stat().st_mode) & 0o111

    def test_corrupt_meta_is_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = artifact_key(_components())
        path = cache.publish(key, _components(), {"a": "a"}).path
        (path / META_NAME).write_text("{not json")
        assert cache.lookup(key) is None
        assert not path.exists()
        assert list(cache.quarantine_dir.iterdir())
        # The key is usable again after re-publish.
        cache.publish(key, _components(), {"a": "a"})
        assert cache.lookup(key) is not None

    def test_missing_listed_artifact_is_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = artifact_key(_components())
        path = cache.publish(key, _components(),
                             {"a": "a", "b": "b"}).path
        (path / "b").unlink()
        assert cache.lookup(key) is None
        assert not path.exists()

    def test_gc_evicts_lru_down_to_cap(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=0)  # manual gc only
        cache.max_bytes = 0
        keys = []
        for n in range(4):
            key = artifact_key(_components(n))
            cache.publish(key, _components(n), {"blob": "x" * 1000})
            keys.append(key)
        # Pin distinct last-used stamps: entry 0 most recent, then 3,
        # 2, 1 (publish order is within mtime granularity otherwise).
        for age, key in enumerate([keys[0], keys[3], keys[2], keys[1]]):
            meta = cache.entry_path(key) / META_NAME
            stamp = meta.stat().st_mtime - 10 * age
            os.utime(meta, times=(stamp, stamp))
            last_used = cache.entry_path(key) / LAST_USED_NAME
            if last_used.exists():
                os.utime(last_used, times=(stamp, stamp))
        result = cache.gc(max_bytes=2500)
        assert result["evicted"] >= 1
        assert result["bytes"] <= 2500
        assert cache.lookup(keys[0]) is not None  # MRU survived

    def test_publish_enforces_size_cap(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=1500)
        for n in range(3):
            cache.publish(artifact_key(_components(n)), _components(n),
                          {"blob": "x" * 1000})
        stats = cache.stats()
        assert stats["bytes"] <= 1500
        # The just-published entry is protected from its own gc.
        assert cache.lookup(artifact_key(_components(2))) is not None

    def test_clear_removes_everything(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.publish(artifact_key(_components()), _components(),
                      {"a": "a"})
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0

    def test_stats_shape(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.publish(artifact_key(_components()), _components(),
                      {"a": "a"})
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["backends"] == {"laminar-c": 1}
        assert stats["bytes"] > 0
        assert json.dumps(stats)  # JSON-serializable for the CLI


@requires_cc
class TestService:
    def test_build_then_hit_bit_exact(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stream = compile_source(TINY_PROGRAM, "tiny.str")
        run_cold, hit_cold = run_native_cached(stream, 16, cache=cache)
        assert hit_cold is False
        run_hot, hit_hot = run_native_cached(stream, 16, cache=cache)
        assert hit_hot is True
        assert run_hot.checksum == run_cold.checksum
        assert run_hot.output_count == run_cold.output_count
        # Bit-exact against the interpreter route too.
        from repro.backend.common import checksum_outputs
        interp = stream.run_laminar(16)
        assert checksum_outputs(interp.outputs) == run_cold.checksum

    def test_entry_carries_full_bundle(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stream = compile_source(TINY_PROGRAM, "tiny.str")
        entry, hit = ensure_native(stream, cache=cache)
        assert hit is False
        assert entry.artifact("prog.c").is_file()
        assert entry.artifact("lir.txt").is_file()
        assert entry.binary.is_file()
        schedule = json.loads(entry.artifact("schedule.json").read_text())
        assert schedule == stream.stats()
        assert entry.meta["stream"] == stream.name

    def test_distinct_options_distinct_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stream = compile_source(TINY_PROGRAM, "tiny.str")
        ensure_native(stream, cache=cache)
        entry2, hit2 = ensure_native(stream, opt=OptOptions.none(),
                                     cache=cache)
        assert hit2 is False
        assert cache.stats()["entries"] == 2

    def test_fifo_backend_cached_too(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stream = compile_source(TINY_PROGRAM, "tiny.str")
        run_a, hit_a = run_native_cached(stream, 8, backend="fifo-c",
                                         cache=cache)
        run_b, hit_b = run_native_cached(stream, 8, backend="fifo-c",
                                         cache=cache)
        assert (hit_a, hit_b) == (False, True)
        assert run_a.checksum == run_b.checksum

    def test_corrupted_binary_rebuilds(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stream = compile_source(TINY_PROGRAM, "tiny.str")
        entry, _hit = ensure_native(stream, cache=cache)
        entry.binary.unlink()  # violates the meta manifest
        entry2, hit2 = ensure_native(stream, cache=cache)
        assert hit2 is False
        assert entry2.binary.is_file()
