"""Unit tests for semantic analysis (types, scopes, token-op placement)."""

import pytest

from repro.frontend import parse_and_check
from repro.frontend.errors import SemanticError


def check(source):
    return parse_and_check(source)


def check_filter(body, signature="float->float", params=""):
    return check(f"{signature} filter F({params}) {{ {body} }}\n"
                 "void->void pipeline Top { add F(); }"
                 if not params else
                 f"{signature} filter F({params}) {{ {body} }}")


def expect_error(source, pattern):
    with pytest.raises(SemanticError, match=pattern):
        check(source)


FILTER_OK = "float->float filter F { work push 1 pop 1 { push(pop()); } }"


class TestProgramLevel:
    def test_duplicate_stream_names(self):
        expect_error(FILTER_OK + FILTER_OK, "duplicate stream name")

    def test_top_level_params_rejected(self):
        expect_error(
            FILTER_OK + " void->void pipeline Top(int n) { add F(); }",
            "must not take parameters")

    def test_valid_program_passes(self):
        check(FILTER_OK)


class TestTokenOps:
    def test_push_in_void_output(self):
        expect_error(
            "float->void filter F { work pop 1 { push(pop()); } }",
            "void output")

    def test_pop_in_void_input(self):
        expect_error(
            "void->float filter F { work push 1 { push(pop()); } }",
            "void input")

    def test_peek_in_void_input(self):
        expect_error(
            "void->float filter F { work push 1 { push(peek(0)); } }",
            "void input")

    def test_push_outside_work(self):
        expect_error(
            "void->float filter F { init { push(1.0); } "
            "work push 1 { push(1.0); } }",
            "only allowed inside work")

    def test_pop_in_helper_ok(self):
        # StreamIt allows token ops in helpers called from work; we are
        # stricter and reject them, keeping rates local to work bodies.
        expect_error(
            "float->float filter F { float f() { return pop(); } "
            "work push 1 pop 1 { push(f()); } }",
            "only allowed inside work")

    def test_peek_offset_must_be_int(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 peek 2 "
            "{ push(peek(1.5)); pop(); } }",
            "peek offset must be int")

    def test_rate_must_be_int(self):
        expect_error(
            "float->float filter F { work push 1.5 pop 1 "
            "{ push(pop()); } }",
            "rate must be int")

    def test_push_rate_on_void_output(self):
        expect_error(
            "float->void filter F { work push 1 pop 1 { pop(); } }",
            "void output but a push rate")


class TestTypes:
    def test_int_plus_float_is_float(self):
        check("float->float filter F { work push 1 pop 1 "
              "{ push(pop() + 1); } }")

    def test_float_to_int_requires_cast(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 "
            "{ int x = pop(); push(1.0); } }",
            "cannot assign float to int")

    def test_cast_allows_narrowing(self):
        check("float->float filter F { work push 1 pop 1 "
              "{ int x = (int)pop(); push(x); } }")

    def test_modulo_requires_ints(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 "
            "{ push(pop() % 2.0); } }",
            "requires int operands")

    def test_condition_must_be_boolean(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 "
            "{ if (1) push(pop()); } }",
            "expected boolean")

    def test_comparison_yields_boolean(self):
        check("float->float filter F { work push 1 pop 1 "
              "{ if (pop() > 0) push(1.0); else push(0.0); } }")

    def test_logical_on_numbers_rejected(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 "
            "{ boolean b = pop() && true; push(1.0); } }",
            "expected boolean")

    def test_bitwise_on_floats_rejected(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 "
            "{ push(pop() & 1.0); } }",
            "requires int operands")

    def test_ternary_branch_unification(self):
        check("float->float filter F { work push 1 pop 1 "
              "{ push(pop() > 0 ? 1 : 0.5); } }")

    def test_ternary_mismatched_branches(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 "
            "{ push(pop() > 0 ? true : 1.0); } }",
            "mismatched branches")

    def test_push_type_checked(self):
        expect_error(
            "float->int filter F { work push 1 pop 1 { push(pop()); } }",
            "cannot assign float to int")

    def test_array_indexing(self):
        check("float->float filter F { float[4] w; work push 1 pop 1 "
              "{ push(w[0] + pop()); } }")

    def test_index_into_scalar_rejected(self):
        expect_error(
            "float->float filter F { float x; work push 1 pop 1 "
            "{ push(x[0] + pop()); } }",
            "not an array")

    def test_array_index_must_be_int(self):
        expect_error(
            "float->float filter F { float[4] w; work push 1 pop 1 "
            "{ push(w[0.5] + pop()); } }",
            "index must be int")

    def test_print_array_rejected(self):
        expect_error(
            "float->void filter F { float[4] w; work pop 1 "
            "{ pop(); println(w); } }",
            "cannot print an array")


class TestScopes:
    def test_unknown_identifier(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 { push(y); } }",
            "unknown identifier 'y'")

    def test_redefinition_in_same_scope(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 "
            "{ int x = 1; float x = 2; push(pop()); } }",
            "redefinition")

    def test_shadowing_in_nested_scope_ok(self):
        check("float->float filter F { work push 1 pop 1 "
              "{ int x = 1; { float x = 2.0; push(x); } pop(); } }")

    def test_local_shadows_field(self):
        check("float->float filter F { float x; work push 1 pop 1 "
              "{ int x = 1; push(pop() + x); } }")

    def test_assign_to_parameter_rejected(self):
        expect_error(
            "float->float filter F(int n) { work push 1 pop 1 "
            "{ n = 3; push(pop()); } }"
            "\nvoid->void pipeline T { add F(1); }",
            "cannot assign to stream parameter")

    def test_loop_variable_scoped_to_loop(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 "
            "{ for (int i = 0; i < 3; i++) { } push(i); pop(); } }",
            "unknown identifier 'i'")


class TestHelpersAndCalls:
    def test_helper_call(self):
        check("float->float filter F { float g(float v) { return v + 1; } "
              "work push 1 pop 1 { push(g(pop())); } }")

    def test_helper_arity_checked(self):
        expect_error(
            "float->float filter F { float g(float v) { return v; } "
            "work push 1 pop 1 { push(g(1.0, 2.0)); } }",
            "expects 1 argument")

    def test_helper_shadowing_intrinsic_rejected(self):
        expect_error(
            "float->float filter F { float sin(float v) { return v; } "
            "work push 1 pop 1 { push(sin(pop())); } }",
            "shadows a built-in")

    def test_unknown_function(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 "
            "{ push(frobnicate(pop())); } }",
            "unknown function")

    def test_intrinsic_arity(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 "
            "{ push(sin(1.0, 2.0)); } }",
            "expects 1 argument")

    def test_randi_requires_int(self):
        expect_error(
            "void->int filter F { work push 1 { push(randi(1.5)); } }",
            "requires int arguments")

    def test_return_outside_helper(self):
        expect_error(
            "float->float filter F { work push 1 pop 1 "
            "{ push(pop()); return; } }",
            "return outside of a helper")

    def test_helper_return_type_checked(self):
        expect_error(
            "float->float filter F { int g() { return 1.5; } "
            "work push 1 pop 1 { push(pop()); } }",
            "cannot assign float to int")


class TestComposites:
    def test_unknown_child(self):
        expect_error("void->void pipeline P { add Nope(); }",
                      "unknown stream 'Nope'")

    def test_add_arity_checked(self):
        expect_error(
            FILTER_OK + " void->void pipeline P { add F(3); }",
            "expects 0 argument")

    def test_add_arg_types_checked(self):
        expect_error(
            "float->float filter G(int n) "
            "{ work push 1 pop 1 { push(pop()); } }"
            "void->void pipeline P { add G(1.5); }",
            "cannot assign float to int")

    def test_empty_composite_rejected(self):
        expect_error("void->void pipeline P { int x = 1; }",
                      "adds no children")

    def test_round_robin_weights_int(self):
        expect_error(
            FILTER_OK + " float->float splitjoin S { "
            "split roundrobin(1.5); add F(); join roundrobin; }",
            "weight must be int")

    def test_anonymous_captures_enclosing_param(self):
        check(
            "float->float filter G(int n) "
            "{ work push 1 pop 1 { push(pop() + n); } }"
            "float->float pipeline P(int k) "
            "{ add pipeline { add G(k); }; }"
            "void->void pipeline Top { add P(3); }")

    def test_while_in_composite_rejected(self):
        expect_error(FILTER_OK + " void->void pipeline P { add F(); "
                     "while (true) add F(); }",
                     "not allowed in a composite body")
