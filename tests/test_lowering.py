"""Tests for the LaminarIR lowering: compile-time queues, splitter/joiner
elimination, loop-carried tokens, unrolling and if-conversion."""

import pytest

from repro import compile_source
from repro.frontend.errors import LoweringError, RateError
from repro.lir import (BinOp, LoweringOptions, MoveOp, PrintOp, SelectOp,
                       StoreOp, lower)
from repro.lir.ops import CallOp, LoadOp

PREAMBLE = """
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
"""


def lower_program(body, lowering=None):
    stream = compile_source(PREAMBLE + body)
    return lower(stream.schedule, stream.source, lowering)


class TestDirectTokenAccess:
    def test_no_queue_ops_in_output(self):
        # pop/peek/push never materialize as instructions: the steady
        # section contains only compute, state and print ops.
        program = lower_program(
            "float->float filter Avg() { work push 1 pop 1 peek 2 "
            "{ push((peek(0) + peek(1)) / 2); pop(); } }"
            "void->void pipeline P { add Src(); add Avg(); add Snk(); }")
        kinds = {type(op).__name__ for op in program.steady}
        assert "MoveOp" not in kinds
        assert kinds <= {"BinOp", "UnOp", "CastOp", "SelectOp", "CallOp",
                         "LoadOp", "StoreOp", "PrintOp"}

    def test_producer_value_used_directly(self):
        # With a pure identity chain, the print argument is the very value
        # the source call produced (no copies in between).
        program = lower_program(
            "float->float filter Id() { work push 1 pop 1 { push(pop()); } }"
            "void->void pipeline P { add Src(); add Id(); add Id(); "
            "add Snk(); }")
        calls = [op for op in program.steady if isinstance(op, CallOp)]
        prints = [op for op in program.steady if isinstance(op, PrintOp)]
        assert len(calls) == 1 and len(prints) == 1
        assert prints[0].value is calls[0].result

    def test_peek_window_names_resolved(self):
        program = lower_program(
            "float->float filter W() { work push 1 pop 1 peek 3 "
            "{ push(peek(0) + peek(1) + peek(2)); pop(); } }"
            "void->void pipeline P { add Src(); add W(); add Snk(); }")
        # 2 carried tokens (peek surplus) rotate through the iteration
        assert len(program.carry_params) == 2
        assert len(program.carry_inits) == 2
        assert len(program.carry_nexts) == 2

    def test_carry_rotation_shifts_window(self):
        program = lower_program(
            "float->float filter W() { work push 1 pop 1 peek 3 "
            "{ push(peek(2)); pop(); } }"
            "void->void pipeline P { add Src(); add W(); add Snk(); }")
        # carry_nexts = [old carry[1], fresh token]
        assert program.carry_nexts[0] is program.carry_params[1]

    def test_prints_per_iteration(self):
        program = lower_program(
            "void->void pipeline P { add Src(); add Snk(); }")
        assert program.prints_per_iteration == 1


class TestSplitterJoinerElimination:
    SPLITJOIN = (
        "float->float filter Id() { work push 1 pop 1 { push(pop()); } }"
        "void->void pipeline P { add Src(); add splitjoin { "
        "split duplicate; add Id(); add Id(); join roundrobin(1, 1); }; "
        "add Snk(); }")

    def test_elimination_produces_no_moves(self):
        program = lower_program(self.SPLITJOIN)
        assert not any(isinstance(op, MoveOp) for op in program.steady)

    def test_ablation_emits_moves(self):
        program = lower_program(
            self.SPLITJOIN,
            LoweringOptions(eliminate_splitjoin=False))
        moves = [op for op in program.steady if isinstance(op, MoveOp)]
        # splitter: 2 moves per token; joiner: 2 moves per iteration
        assert len(moves) == 4

    def test_duplicate_split_shares_one_value(self):
        program = lower_program(
            "float->float filter Neg() { work push 1 pop 1 "
            "{ push(0 - pop()); } }"
            "void->void pipeline P { add Src(); add splitjoin { "
            "split duplicate; add Neg(); add Neg(); "
            "join roundrobin(1, 1); }; add Snk(); }")
        binops = [op for op in program.steady if isinstance(op, BinOp)]
        assert len(binops) == 2
        assert binops[0].rhs is binops[1].rhs  # same source token

    def test_roundrobin_routing(self):
        # roundrobin(1,1) split: even tokens to branch 0, odd to branch 1,
        # re-interleaved by the joiner; output equals input order.
        stream = compile_source(
            PREAMBLE +
            "float->float filter Id() { work push 1 pop 1 { push(pop()); } }"
            "void->void pipeline P { add Src(); add splitjoin { "
            "split roundrobin(1, 1); add Id(); add Id(); "
            "join roundrobin(1, 1); }; add Snk(); }")
        fifo = stream.run_fifo(6)
        laminar = stream.run_laminar(6)
        assert fifo.outputs == laminar.outputs


class TestStateAndSetup:
    def test_field_initializer_in_setup(self):
        program = lower_program(
            "float->float filter S() { float g = 2.5; "
            "work push 1 pop 1 { push(pop() * g); } }"
            "void->void pipeline P { add Src(); add S(); add Snk(); }")
        stores = [op for op in program.setup if isinstance(op, StoreOp)]
        assert len(stores) == 1

    def test_init_block_unrolls_into_setup(self):
        program = lower_program(
            "float->float filter T() { float[4] t; "
            "init { for (int i = 0; i < 4; i++) t[i] = i * 2.0; } "
            "work push 1 pop 1 { push(pop() + t[3]); } }"
            "void->void pipeline P { add Src(); add T(); add Snk(); }")
        stores = [op for op in program.setup if isinstance(op, StoreOp)]
        assert len(stores) == 4

    def test_state_slot_per_instance(self):
        program = lower_program(
            "float->float filter A() { float s; "
            "work push 1 pop 1 { s = s + pop(); push(s); } }"
            "void->void pipeline P { add Src(); add A(); add A(); "
            "add Snk(); }")
        names = {slot.name for slot in program.state_slots}
        assert len(names) == 2


class TestControlFlow:
    def test_static_loop_unrolls(self):
        program = lower_program(
            "float->float filter U() { work push 1 pop 1 "
            "{ float s = 0; for (int i = 0; i < 5; i++) s += pop() * i; "
            "push(s); } }"
            .replace("pop() * i", "peek(0) * i")  # single pop
            .replace("push(s); }", "push(s); pop(); }")
            + "void->void pipeline P { add Src(); add U(); add Snk(); }")
        binops = [op for op in program.steady if isinstance(op, BinOp)]
        # i = 0..4 : mul+add per step, minus folded zeros
        assert len(binops) >= 4

    def test_dynamic_condition_if_converts(self):
        program = lower_program(
            "float->float filter C() { work push 1 pop 1 "
            "{ float v = pop(); float r = 0; "
            "if (v > 0) r = v; else r = 0 - v; push(r); } }"
            "void->void pipeline P { add Src(); add C(); add Snk(); }")
        assert any(isinstance(op, SelectOp) for op in program.steady)

    def test_push_under_dynamic_condition_rejected(self):
        with pytest.raises(LoweringError, match="push under a data"):
            lower_program(
                "float->float filter Bad() { work push 1 pop 1 "
                "{ float v = pop(); if (v > 0) push(v); else push(0.0); } }"
                "void->void pipeline P { add Src(); add Bad(); "
                "add Snk(); }")

    def test_dynamic_loop_bound_rejected(self):
        with pytest.raises(LoweringError, match="not compile-time"):
            lower_program(
                "int->int filter Bad() { work push 1 pop 1 "
                "{ int n = pop(); int s = 0; "
                "for (int i = 0; i < n; i++) s += i; push(s); } }"
                "void->int filter ISrc() { work push 1 { push(randi(5)); } }"
                "int->void filter ISnk() { work pop 1 { println(pop()); } }"
                "void->void pipeline P { add ISrc(); add Bad(); "
                "add ISnk(); }")

    def test_dynamic_peek_offset_rejected(self):
        with pytest.raises(LoweringError, match="static token indices"):
            lower_program(
                "int->int filter Bad() { work push 1 pop 1 peek 4 "
                "{ push(peek(pop() & 3)); } }"
                "void->int filter ISrc() { work push 1 { push(randi(5)); } }"
                "int->void filter ISnk() { work pop 1 { println(pop()); } }"
                "void->void pipeline P { add ISrc(); add Bad(); "
                "add ISnk(); }")

    def test_helper_inlined(self):
        program = lower_program(
            "float->float filter H() { "
            "float tri(float x) { return x * x * x; } "
            "work push 1 pop 1 { push(tri(pop())); } }"
            "void->void pipeline P { add Src(); add H(); add Snk(); }")
        binops = [op for op in program.steady if isinstance(op, BinOp)]
        assert len(binops) == 2  # two multiplies, fully inlined


class TestRateEnforcement:
    def test_under_popping_detected(self):
        with pytest.raises(RateError, match="popped 1 token"):
            lower_program(
                "float->float filter Bad() { work push 1 pop 2 "
                "{ push(pop()); } }"
                "void->void pipeline P { add Src(); add Bad(); "
                "add Snk(); }")

    def test_over_pushing_detected(self):
        with pytest.raises(RateError, match="pushed 2 token"):
            lower_program(
                "float->float filter Bad() { work push 1 pop 1 "
                "{ push(pop()); push(1.0); } }"
                "void->void pipeline P { add Src(); add Bad(); "
                "add Snk(); }")

    def test_peek_beyond_declared_window(self):
        with pytest.raises(LoweringError, match="exceeds declared peek"):
            lower_program(
                "float->float filter Bad() { work push 1 pop 1 peek 2 "
                "{ pop(); push(peek(2)); } }"
                "void->void pipeline P { add Src(); add Bad(); "
                "add Snk(); }")


class TestDump:
    def test_dump_contains_sections(self, tiny_stream):
        program = tiny_stream.lower().program
        text = program.dump()
        assert "setup:" in text
        assert "steady" in text

    def test_dump_truncation(self, demo_stream):
        program = demo_stream.lower().program
        text = program.dump(max_ops_per_section=2)
        assert "more)" in text
