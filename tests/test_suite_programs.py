"""Structural and behavioural tests for the 12 suite benchmarks."""

import math

import pytest

from repro.suite import (BENCHMARKS, benchmark_names, benchmark_source,
                         load_benchmark)

EXPECTED_NAMES = {
    "autocor", "beamformer", "bitonic_sort", "channel_vocoder", "dct",
    "fft", "filterbank", "fm_radio", "lattice", "matrixmult",
    "rate_convert", "tde",
}


class TestRegistry:
    def test_all_twelve_present(self):
        assert set(benchmark_names()) == EXPECTED_NAMES

    def test_sources_load(self):
        for name in benchmark_names():
            source = benchmark_source(name)
            assert "pipeline" in source

    def test_descriptions_nonempty(self):
        for info in BENCHMARKS.values():
            assert info.description
            assert info.domain

    def test_static_variant_strips_rng(self):
        for name in benchmark_names():
            source = benchmark_source(name, static_input=True)
            assert "randf()" not in source
            assert "randi(" not in source

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_benchmark("nope")


class TestStructure:
    def test_splitjoin_benchmarks_have_splitters(self):
        for name in ("fm_radio", "beamformer", "dct", "filterbank",
                     "channel_vocoder", "autocor", "matrixmult"):
            stats = load_benchmark(name).stats()
            assert stats["splitters"] >= 1, name
            assert stats["joiners"] >= 1, name

    def test_linear_benchmarks_have_none(self):
        for name in ("bitonic_sort", "lattice", "rate_convert", "fft",
                     "tde"):
            stats = load_benchmark(name).stats()
            assert stats["splitters"] == 0, name

    def test_peeking_present_where_expected(self):
        # (autocor peeks exactly its pop window, so it has no surplus)
        for name in ("fm_radio", "filterbank",
                     "channel_vocoder", "rate_convert"):
            stats = load_benchmark(name).stats()
            assert stats["peeking_filters"] >= 1, name

    def test_filter_counts(self):
        stats = load_benchmark("filterbank").stats()
        # source + 8 bands x 5 stages + adder + printer
        assert stats["filters"] == 1 + 8 * 5 + 1 + 1

    def test_rate_convert_repetition_vector(self):
        stream = load_benchmark("rate_convert")
        reps = {v.name: r for v, r in stream.schedule.reps.items()}
        # U=3, D=2: expander fires 2x producing 6, compressor fires 3x
        assert reps["Expander"] == 2
        assert reps["Compressor"] == 3


class TestBehaviour:
    def test_bitonic_sorts(self):
        stream = load_benchmark("bitonic_sort")
        outputs = stream.run_fifo(3).outputs
        for block in range(3):
            chunk = outputs[block * 16:(block + 1) * 16]
            assert chunk == sorted(chunk)

    def test_fft_parseval(self):
        # Parseval: sum |x|^2 == (1/N) sum |X|^2 for our forward FFT.
        stream = load_benchmark("fft")
        laminar = stream.run_laminar(1)
        spectrum = laminar.outputs
        n = 16
        energy_freq = sum(spectrum[2 * k] ** 2 + spectrum[2 * k + 1] ** 2
                          for k in range(n))
        # recompute the input the source generated
        from repro.frontend.intrinsics import XorShift32
        rng = XorShift32()
        inputs = [rng.randf() * 2.0 - 1.0 for _ in range(2 * n)]
        energy_time = sum(inputs[2 * k] ** 2 + inputs[2 * k + 1] ** 2
                          for k in range(n))
        assert energy_freq / n == pytest.approx(energy_time, rel=1e-9)

    def test_tde_is_invertible_shape(self):
        # TDE output count equals input count (FFT -> scale -> IFFT).
        stream = load_benchmark("tde")
        result = stream.run_fifo(2)
        assert len(result.outputs) == 2 * 2 * 16

    def test_dct_transpose_is_routing_only(self):
        stream = load_benchmark("dct")
        # transpose branches are identity filters: the laminar program
        # should contain exactly 2 RowDCT instances worth of arithmetic
        program = stream.lower().program
        from repro.lir import MoveOp
        assert not any(isinstance(op, MoveOp) for op in program.steady)

    def test_dct_constant_input_gives_dc_only(self):
        source = benchmark_source("dct", static_input=True)
        from repro import compile_source
        stream = compile_source(source)
        outputs = stream.run_fifo(1).outputs
        # flat input: every 2-D coefficient except DC is ~0
        assert abs(outputs[0]) > 1.0
        assert all(abs(v) < 1e-9 for v in outputs[1:])

    def test_lattice_state_promoted(self):
        stream = load_benchmark("lattice")
        lowered = stream.lower()
        assert lowered.opt_stats.slots_promoted >= 10
        assert lowered.program.state_slots == []

    def test_matrixmult_against_reference(self):
        stream = load_benchmark("matrixmult")
        outputs = stream.run_laminar(1).outputs
        from repro.frontend.intrinsics import XorShift32
        rng = XorShift32()
        m, n, p = 4, 6, 4
        data = [rng.randf() * 4.0 - 2.0 for _ in range(m * n + n * p)]
        a = [data[i * n:(i + 1) * n] for i in range(m)]
        b = [data[m * n + i * p:m * n + (i + 1) * p] for i in range(n)]
        expected = [sum(a[r][k] * b[k][c] for k in range(n))
                    for r in range(m) for c in range(p)]
        assert outputs == pytest.approx(expected, rel=1e-12)

    def test_autocor_lag_zero_largest(self):
        stream = load_benchmark("autocor")
        outputs = stream.run_fifo(4).outputs
        # outputs interleave lags 0..7; lag 0 is the signal energy and
        # dominates the others for white noise
        for i in range(0, len(outputs), 8):
            row = outputs[i:i + 8]
            assert row[0] >= max(row[1:])

    def test_filterbank_delay_prework(self):
        stream = load_benchmark("filterbank")
        assert any(f.prework for f in stream.schedule.init)

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_static_variant_runs(self, name):
        stream = load_benchmark(name, static_input=True)
        fifo = stream.run_fifo(2)
        laminar = stream.run_laminar(2)
        assert fifo.outputs == laminar.outputs


class TestScaling:
    def test_scaled_fft_still_correct(self):
        stream = load_benchmark("fft", scale=2)
        from repro import check_equivalence
        assert check_equivalence(stream, iterations=2).matches

    def test_scaled_bitonic_still_sorts(self):
        stream = load_benchmark("bitonic_sort", scale=2)
        outputs = stream.run_laminar(1).outputs
        assert outputs == sorted(outputs)
        assert len(outputs) == 32

    def test_scale_grows_steady_state(self):
        small = load_benchmark("fft", scale=1)
        large = load_benchmark("fft", scale=4)
        assert len(large.lower().program.steady) > \
            len(small.lower().program.steady)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            load_benchmark("fft", scale=3)

    def test_every_benchmark_has_scale_template(self):
        from repro.suite import benchmark_source
        for name in benchmark_names():
            source = benchmark_source(name, scale=2)
            assert source != benchmark_source(name)


class TestExtras:
    def test_extras_not_in_paper_set(self):
        assert "tea_cipher" not in benchmark_names()
        assert "tea_cipher" in benchmark_names(include_extras=True)
        assert len(benchmark_names(include_extras=True)) == 14

    def test_tea_roundtrip(self):
        from repro.frontend.intrinsics import XorShift32
        from repro.lir import wrap_i32
        stream = load_benchmark("tea_cipher")
        outputs = stream.run_laminar(4).outputs
        rng = XorShift32()

        def word():
            hi = rng.randi(65536)
            lo = rng.randi(65536)
            return wrap_i32(hi * 65536 + lo)

        for block in range(4):
            plain = (word(), word())
            decrypted = (outputs[block * 4], outputs[block * 4 + 1])
            cipher = (outputs[block * 4 + 2], outputs[block * 4 + 3])
            assert decrypted == plain
            assert cipher != plain  # the cipher actually does something

    def test_tea_equivalence(self):
        from repro import check_equivalence
        assert check_equivalence(load_benchmark("tea_cipher"), 3).matches

    def test_histogram_counts_are_exact(self):
        from repro.frontend.intrinsics import XorShift32
        stream = load_benchmark("histogram")
        outputs = stream.run_fifo(1).outputs
        rng = XorShift32()
        samples = [rng.randi(16) for _ in range(64)]
        expected = [samples.count(b) for b in range(16)]
        assert outputs[:16] == expected
        assert outputs[16] == max(expected)  # the peak branch

    def test_histogram_keeps_memory_state(self):
        # dynamic binning blocks promotion: residual loads/stores remain
        stream = load_benchmark("histogram")
        program = stream.lower().program
        assert len(program.state_slots) >= 2
        result = stream.run_laminar(2)
        assert result.steady_counters.memory_accesses > 0

    def test_extras_scale(self):
        from repro import check_equivalence
        stream = load_benchmark("histogram", scale=2)
        assert check_equivalence(stream, 2).matches
