"""Stress and robustness tests: deep pipelines, wide splitjoins, large
peek windows, and heavy repetition vectors."""

import pytest

from repro import check_equivalence, compile_source
from repro.frontend.errors import LoweringError
from repro.lir import LoweringOptions, lower, verify

PREAMBLE = """
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
"""


class TestDeepAndWide:
    def test_deep_pipeline(self):
        stages = "".join(
            f"float->float filter S{i}() {{ work push 1 pop 1 "
            f"{{ push(pop() * {1.0 + i / 100.0}); }} }}"
            for i in range(60))
        adds = "".join(f"add S{i}();" for i in range(60))
        stream = compile_source(
            PREAMBLE + stages +
            f"void->void pipeline P {{ add Src(); {adds} add Snk(); }}")
        assert len(stream.graph.filters) == 62
        report = check_equivalence(stream, iterations=3)
        assert report.matches

    def test_wide_splitjoin(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter Id() { work push 1 pop 1 "
            "{ push(pop()); } }"
            "void->void pipeline P { add Src(); add splitjoin { "
            "split duplicate; "
            "for (int i = 0; i < 24; i++) add Id(); "
            "join roundrobin; }; add Snk(); }")
        assert check_equivalence(stream, iterations=2).matches
        # every branch reads the same source token directly
        program = stream.lower().program
        verify(program)

    def test_large_peek_window(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter Big() { work push 1 pop 1 peek 128 { "
            "float s = 0; for (int i = 0; i < 128; i++) s += peek(i); "
            "push(s); pop(); } }"
            "void->void pipeline P { add Src(); add Big(); add Snk(); }")
        program = stream.lower().program
        assert len(program.carry_params) == 127
        assert check_equivalence(stream, iterations=2).matches

    def test_heavy_repetition_vector(self):
        # 5:7 and 7:5 conversions force reps of lcm scale
        stream = compile_source(
            PREAMBLE +
            "float->float filter Up() { work push 7 pop 5 { "
            "float s = 0; for (int i = 0; i < 5; i++) s += pop(); "
            "for (int i = 0; i < 7; i++) push(s + i); } }"
            "float->float filter Down() { work push 5 pop 7 { "
            "float s = 0; for (int i = 0; i < 7; i++) s += pop(); "
            "for (int i = 0; i < 5; i++) push(s - i); } }"
            "void->void pipeline P { add Src(); add Up(); add Down(); "
            "add Snk(); }")
        reps = {v.name: r for v, r in stream.schedule.reps.items()}
        # Up: 5 -> 7 and Down: 7 -> 5 cancel, so they fire equally often
        assert reps["Up"] == 1 and reps["Down"] == 1
        assert reps["Src"] == 5 and reps["Snk"] == 5
        assert check_equivalence(stream, iterations=2).matches

    def test_nested_splitjoin_tower(self):
        # three levels of nesting
        stream = compile_source(
            PREAMBLE +
            "float->float filter Id() { work push 1 pop 1 "
            "{ push(pop()); } }"
            "float->float splitjoin L1 { split roundrobin(1, 1); "
            "add Id(); add Id(); join roundrobin(1, 1); }"
            "float->float splitjoin L2 { split duplicate; "
            "add L1(); add Id(); join roundrobin(1, 1); }"
            "float->float splitjoin L3 { split roundrobin(3, 1); "
            "add L2(); add Id(); join roundrobin(6, 1); }"  # L2 doubles
            "void->void pipeline P { add Src(); add L3(); add Snk(); }")
        assert check_equivalence(stream, iterations=4).matches


class TestLimits:
    def test_op_limit_enforced(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter Heavy() { work push 1 pop 1 { "
            "float s = pop(); for (int i = 0; i < 500; i++) "
            "s = s * 1.0001 + i; push(s); } }"
            "void->void pipeline P { add Src(); add Heavy(); add Snk(); }")
        with pytest.raises(LoweringError, match="ops"):
            lower(stream.schedule, stream.source,
                  LoweringOptions(op_limit=100))

    def test_graph_size_guard(self):
        from repro.frontend import parse_and_check
        from repro.frontend.errors import ElaborationError
        from repro.graph import elaborate
        source = (
            "float->float filter Id() { work push 1 pop 1 "
            "{ push(pop()); } }"
            "void->void pipeline P { "
            "for (int i = 0; i < 100000; i++) add Id(); }")
        with pytest.raises(ElaborationError, match="instances"):
            elaborate(parse_and_check(source))

    def test_composite_loop_guard(self):
        from repro.frontend import parse_and_check
        from repro.frontend.errors import ElaborationError
        from repro.graph import elaborate
        source = (
            "float->float filter Id() { work push 1 pop 1 "
            "{ push(pop()); } }"
            "void->void pipeline P { int i = 0; "
            "for (i = 0; i >= 0; i = i) add Id(); }")
        with pytest.raises(ElaborationError):
            elaborate(parse_and_check(source))


class TestProgramIntrospection:
    def test_op_counts(self, demo_stream):
        counts = demo_stream.lower().program.op_counts()
        assert set(counts) == {"setup", "init", "steady"}
        assert counts["steady"].get("PrintOp", 0) > 0

    def test_ops_have_str(self, demo_stream):
        program = demo_stream.lower().program
        for _title, ops in program.sections():
            for op in ops:
                text = str(op)
                assert text and "Op" not in text.split()[0]

    def test_steady_op_count_property(self, demo_stream):
        program = demo_stream.lower().program
        assert program.steady_op_count == len(program.steady)
