"""Tests for the differential fuzzing subsystem (``repro.fuzz``) and
unit guards for the correctness fixes the fuzzer exposed."""

from pathlib import Path

import pytest

import repro.fuzz.driver
from repro.api import check_equivalence, compile_source
from repro.frontend.intrinsics import XorShift32
from repro.fuzz import (GeneratorOptions, fuzz_campaign, generate_program,
                        random_spec, render, run_source, shrink_spec)
from repro.fuzz.driver import FuzzFinding, write_reproducer
from repro.fuzz.generator import SplitJoinSpec
from repro.fuzz.oracle import Divergence, OracleReport, _token

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"


# ---------------------------------------------------------------------------
# generator
# ---------------------------------------------------------------------------

class TestGenerator:
    def test_deterministic(self):
        assert generate_program("d:1") == generate_program("d:1")
        assert generate_program("d:1") != generate_program("d:2")

    def test_every_spec_compiles(self):
        for i in range(25):
            source = generate_program(f"gen:{i}")
            compile_source(source, f"gen_{i}.str")

    def test_feature_coverage(self):
        """The generator must actually reach the surface it advertises."""
        features = set()
        for i in range(150):
            features |= random_spec(f"cov:{i}").features
        assert {"feedbackloop", "weight0-split", "weight0-join",
                "prework", "peeking-filter", "randi", "randf",
                "int-div", "array", "duplicate",
                "roundrobin-splitjoin"} <= features

    def test_options_gate_composites(self):
        options = GeneratorOptions(allow_feedback=False,
                                   allow_splitjoin=False)
        for i in range(40):
            spec = random_spec(f"flat:{i}", options)
            assert "feedbackloop" not in spec.features
            assert not any(isinstance(s, SplitJoinSpec)
                           for s in spec.stages)


# ---------------------------------------------------------------------------
# oracle
# ---------------------------------------------------------------------------

class TestOracle:
    def test_token_comparison_is_bit_exact(self):
        nan = float("nan")
        assert _token(nan) == _token(nan)
        assert _token(0.0) != _token(-0.0)
        assert _token(1) != _token(1.0)
        assert _token(True) == _token(1)

    def test_compile_error_is_a_divergence_kind(self):
        report = run_source("this is not streamit")
        assert report.divergence is not None
        assert report.divergence.kind == "compile-error"

    def test_oversized_schedule_is_skipped(self):
        source = generate_program("skip:0")
        report = run_source(source, iterations=2, max_steady_firings=0)
        assert report.divergence is None
        assert report.skipped is not None

    def test_clean_program_reports_ok(self):
        report = run_source(generate_program("ok:0"), iterations=3)
        assert report.ok
        assert report.output_count > 0


# ---------------------------------------------------------------------------
# shrinker
# ---------------------------------------------------------------------------

class TestShrink:
    def test_shrinks_to_smaller_spec(self):
        spec = None
        for i in range(80):
            spec = random_spec(f"sh:{i}")
            if any(isinstance(s, SplitJoinSpec) for s in spec.stages):
                break
        assert any(isinstance(s, SplitJoinSpec) for s in spec.stages)

        def keeps_splitjoin(candidate):
            if not any(isinstance(s, SplitJoinSpec)
                       for s in candidate.stages):
                return False
            try:
                compile_source(render(candidate), "<shrink>")
            except Exception:
                return False
            return True

        shrunk = shrink_spec(spec, keeps_splitjoin)
        assert keeps_splitjoin(shrunk)
        assert len(render(shrunk)) < len(render(spec))

    def test_invalid_candidates_are_rejected_not_fatal(self):
        spec = random_spec("sh:reject")
        # A predicate that only accepts the original program: shrinking
        # must terminate and hand the original back unchanged.
        original = render(spec)
        shrunk = shrink_spec(spec, lambda c: render(c) == original)
        assert render(shrunk) == original


# ---------------------------------------------------------------------------
# campaign driver
# ---------------------------------------------------------------------------

class TestDriver:
    def test_clean_campaign(self):
        result = fuzz_campaign(seed="unit", runs=10, iterations=3)
        assert result.ok
        assert result.programs == 10
        assert "type-int" in result.features or \
            "type-float" in result.features

    def test_divergence_is_recorded_and_written(self, tmp_path,
                                                monkeypatch):
        real = repro.fuzz.driver.run_source

        def flaky(source, **kwargs):
            if "Src1" in source and "FuzzTop" in source:
                report = real(source, **kwargs)
                if report.ok and not report.skipped:
                    return OracleReport(Divergence(
                        kind="output-mismatch", route="laminar-opt",
                        detail="synthetic"))
                return report
            return real(source, **kwargs)

        monkeypatch.setattr(repro.fuzz.driver, "run_source", flaky)
        result = fuzz_campaign(seed="inject", runs=2, iterations=2,
                               corpus_dir=tmp_path)
        assert not result.ok
        finding = result.findings[0]
        assert finding.divergence.kind == "output-mismatch"
        assert finding.reproducer is not None
        assert finding.reproducer.exists()
        text = finding.reproducer.read_text()
        assert "Shrunk fuzz reproducer" in text
        assert "FuzzTop" in text

    def test_write_reproducer_header(self, tmp_path):
        finding = FuzzFinding(
            seed="7:3",
            divergence=Divergence(kind="output-mismatch",
                                  route="laminar-opt", detail="token 0"),
            source="void->void pipeline P { }\n")
        path = write_reproducer(finding, tmp_path / "corpus")
        assert path.name == "fuzz_7_3_output-mismatch.str"
        assert "seed: 7:3" in path.read_text()


# ---------------------------------------------------------------------------
# unit guards for the fixes the fuzzer exposed
# ---------------------------------------------------------------------------

class TestSatelliteFixes:
    def test_randi_negative_bound_matches_c_cast(self):
        # C computes rng_next() % (uint32_t)bound and reinterprets the
        # result as i32; the Python intrinsic must mirror that exactly.
        raw = XorShift32(1234).next_u32()
        value = raw % ((-5) & 0xFFFFFFFF)
        if value >= 0x80000000:
            value -= 0x100000000
        assert XorShift32(1234).randi(-5) == value

    def test_randi_zero_bound_raises(self):
        with pytest.raises(ValueError):
            XorShift32(1).randi(0)

    def test_int_min_division_wraps(self):
        source = (CORPUS_DIR / "div_neg_intmin.str").read_text()
        stream = compile_source(source, "div.str")
        report = check_equivalence(stream, iterations=2)
        assert report.matches
        # INT_MIN / -1 wraps back to INT_MIN in every route.
        assert report.fifo.outputs[0] == -2147483648
        assert report.fifo.outputs[1] == 0   # INT_MIN % -1

    def test_weight0_roundrobin_ports(self):
        source = (CORPUS_DIR / "weight0_roundrobin.str").read_text()
        stream = compile_source(source, "w0.str")
        report = check_equivalence(stream, iterations=3)
        assert report.matches
        # First splitjoin interleaves doubled input with injected
        # 100, 101, …; the second doubles again and discards the
        # injected lane, leaving 4 * (0, 1, 2, 3).
        assert report.fifo.outputs[:4] == [0, 4, 8, 12]

    def test_prework_peek_window_schedules(self):
        source = (CORPUS_DIR / "prework_peek.str").read_text()
        stream = compile_source(source, "pre.str")
        report = check_equivalence(stream, iterations=3)
        assert report.matches
        # prework: peek(0) + peek(2) = 0 + 2 with nothing consumed.
        assert report.fifo.outputs[0] == 2

    def test_cse_never_merges_rand_calls(self):
        source = (CORPUS_DIR / "rand_cse.str").read_text()
        stream = compile_source(source, "cse.str")
        dump = stream.lower().program.dump()
        assert dump.count("randi") == 4
        assert check_equivalence(stream, iterations=3).matches

    def test_c_backends_route_int_division_through_helpers(self):
        source = (CORPUS_DIR / "div_neg_intmin.str").read_text()
        stream = compile_source(source, "div.str")
        for code in (stream.fifo_c(), stream.laminar_c()):
            assert "repro_div_i32(" in code
            assert "repro_mod_i32(" in code
