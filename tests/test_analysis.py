"""Tests for the def-use ``ProgramIndex`` and its incremental updates.

The unit tests drive the index directly on hand-built IR; the property
tests reuse the fuzz generator and run the whole optimizer with
``verify_analyses=True``, which cross-checks the incrementally
maintained index against a from-scratch rebuild after every pass.
"""

import pytest

from repro import compile_source
from repro.frontend.errors import CompileError
from repro.frontend.types import FLOAT, INT
from repro.fuzz import generate_program
from repro.lir import (BinOp, CallOp, LoadOp, MoveOp, OpWorklist, PrintOp,
                       Program, ProgramIndex, StateSlot, StoreOp, Temp,
                       VerificationError, const_float, lower, verify_index)
from repro.opt import OptOptions, optimize


def make_program():
    return Program(name="test")


def indexed(program):
    return ProgramIndex(program)


class TestOpWorklist:
    def test_push_deduplicates(self):
        program = make_program()
        op = PrintOp(result=None, value=const_float(1.0))
        worklist = OpWorklist()
        worklist.push(op)
        worklist.push(op)
        assert len(worklist) == 1
        assert worklist.pop() is op
        assert worklist.pop() is None

    def test_pop_allows_repush(self):
        op = PrintOp(result=None, value=const_float(1.0))
        worklist = OpWorklist()
        worklist.push(op)
        assert worklist.pop() is op
        worklist.push(op)
        assert worklist.pop() is op


class TestProgramIndex:
    def _chain(self):
        """randf -> b = a + a -> c = move b -> print c"""
        program = make_program()
        a, b, c = Temp(FLOAT), Temp(FLOAT), Temp(FLOAT)
        ops = [
            CallOp(result=a, name="randf", args=[], pure=False),
            BinOp(result=b, op="+", lhs=a, rhs=a),
            MoveOp(result=c, src=b),
            PrintOp(result=None, value=c),
        ]
        program.steady = list(ops)
        return program, ops, (a, b, c)

    def test_def_and_use_lookup(self):
        program, ops, (a, b, c) = self._chain()
        index = indexed(program)
        assert index.def_of(a.id) is ops[0]
        assert index.def_of(b.id) is ops[1]
        # Use counts are per-op: `a + a` is one user of `a`.
        assert index.op_use_count(a.id) == 1
        assert index.users_of(a.id) == [ops[1]]
        assert index.use_count(c.id) == 1
        verify_index(program, index)

    def test_op_ids_follow_program_order(self):
        program, ops, _temps = self._chain()
        index = indexed(program)
        ids = [index.op_id(op) for op in ops]
        assert ids == sorted(ids)
        assert index.section_of(ops[0]) == "steady"

    def test_replace_all_uses_moves_use_lists(self):
        program, ops, (a, b, c) = self._chain()
        index = indexed(program)
        affected, carries_touched = index.replace_all_uses(c, a)
        assert affected == [ops[3]]
        assert not carries_touched
        assert ops[3].value is a
        assert index.use_count(c.id) == 0
        assert sorted(index.op_id(op) for op in index.users_of(a.id)) == \
            [index.op_id(ops[1]), index.op_id(ops[3])]
        verify_index(program, index)

    def test_erase_reports_newly_dead_defs(self):
        program, ops, (a, b, c) = self._chain()
        index = indexed(program)
        index.replace_all_uses(c, a)
        effects = index.erase(ops[2])  # the now-unused move
        assert effects.dead_defs == [ops[1]]
        assert index.is_erased(ops[2])
        assert list(index.live_ops()) == [ops[0], ops[1], ops[3]]
        verify_index(program, index)

    def test_erase_refuses_while_result_is_used(self):
        program, ops, _temps = self._chain()
        index = indexed(program)
        with pytest.raises(AssertionError):
            index.erase(ops[1])  # b still feeds the move

    def test_compact_rewrites_section_lists(self):
        program, ops, (a, b, c) = self._chain()
        index = indexed(program)
        index.replace_all_uses(c, a)
        index.erase(ops[2])
        index.compact()
        assert program.steady == [ops[0], ops[1], ops[3]]

    def test_erasing_last_load_queues_slot_stores(self):
        program = make_program()
        slot = StateSlot(name="s", ty=FLOAT)
        program.state_slots = [slot]
        loaded = Temp(FLOAT)
        store = StoreOp(result=None, slot=slot, value=const_float(2.0))
        load = LoadOp(result=loaded, slot=slot)
        program.steady = [store, load,
                          PrintOp(result=None, value=loaded)]
        index = indexed(program)
        assert index.slot_load_count("s") == 1
        index.replace_all_uses(loaded, const_float(2.0))
        effects = index.erase(load)
        assert effects.dead_stores == [store]
        assert index.slot_load_count("s") == 0
        verify_index(program, index)

    def test_carry_uses_tracked(self):
        program = make_program()
        param = Temp(FLOAT)
        a = Temp(FLOAT)
        program.init = [CallOp(result=a, name="randf", args=[],
                               pure=False)]
        program.carry_params = [param]
        program.carry_inits = [a]
        program.carry_nexts = [param]
        program.steady = [PrintOp(result=None, value=param)]
        index = indexed(program)
        # `a` has no op users but feeds a carry: still live.
        assert index.op_use_count(a.id) == 0
        assert index.use_count(a.id) == 1
        affected, carries_touched = index.replace_all_uses(
            param, const_float(0.0))
        assert carries_touched
        assert affected == [program.steady[0]]
        assert program.carry_nexts == [const_float(0.0)]
        verify_index(program, index)

    def test_verify_index_catches_corruption(self):
        program, _ops, (a, _b, _c) = self._chain()
        index = indexed(program)
        rogue = PrintOp(result=None, value=a)  # behind the index's back
        program.steady.append(rogue)
        with pytest.raises(VerificationError):
            verify_index(program, index)


class TestIncrementalMatchesRebuild:
    """Satellite property test: after every optimizer pass, the
    incrementally maintained index must equal a from-scratch rebuild
    (``verify_analyses=True`` makes the pass manager check exactly that).
    """

    @pytest.mark.parametrize("seed", range(25))
    def test_fuzzed_programs(self, seed):
        source = generate_program(f"defuse:{seed}")
        try:
            stream = compile_source(source)
        except CompileError:
            pytest.skip("generator emitted a program the frontend rejects")
        program = lower(stream.schedule, stream.source)
        stats = optimize(program, OptOptions(verify_analyses=True))
        assert stats.converged

    def test_suite_benchmark(self):
        from repro.suite import load_benchmark
        stream = load_benchmark("rate_convert")
        program = lower(stream.schedule, stream.source)
        stats = optimize(program, OptOptions(verify_analyses=True))
        assert stats.converged

    def test_custom_pipeline_keeps_index_consistent(self):
        source = generate_program("defuse:pipeline")
        stream = compile_source(source)
        program = lower(stream.schedule, stream.source)
        stats = optimize(program, OptOptions(
            pipeline=("dce", "fold", "cse", "carry", "dce", "schedule"),
            verify_analyses=True))
        assert stats.converged
