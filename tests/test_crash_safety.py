"""Crash-safe serving: worker pool, admission, breaker, drain, chaos."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import compile_source
from repro.backend.common import checksum_outputs
from repro.cache import ArtifactCache
from repro.faults import FaultPlan, inject
from repro.obs import ledger as obs_ledger
from repro.serve import (AdmissionQueue, CircuitBreaker, CircuitOpenError,
                         ServeClient, ServeServer, ShedRequest, WorkerPool)
from repro.serve import pool as pool_mod

COUNTER_PROGRAM = """
void->int filter CountCS() {
  int x;
  init { x = 3; }
  work push 1 {
    push(x);
    x = x + 1;
  }
}

int->void filter DropCS() {
  work pop 1 { println(pop()); }
}

void->void pipeline CountingCS {
  add CountCS();
  add DropCS();
}
"""


def _oracle(iterations: int) -> str:
    outputs = compile_source(COUNTER_PROGRAM, "<oracle>") \
        .run_laminar(iterations).outputs
    return f"{checksum_outputs(outputs):016x}"


class _OneShotPlan(FaultPlan):
    """Fires ``site`` exactly ``times`` times, then never again."""

    def __init__(self, site: str, times: int = 1):
        super().__init__(rates={site: 1.0})
        self._site = site
        self._left = times

    def should_fire(self, site: str) -> bool:
        if site == self._site and self._left > 0:
            self._left -= 1
            self.fired[site] = self.fired.get(site, 0) + 1
            return True
        return False


# -- the worker pool ----------------------------------------------------------

class TestWorkerPool:
    def test_interp_round_trip(self):
        pool = WorkerPool(size=1, job_timeout=60)
        try:
            reply = pool.submit({"kind": "interp",
                                 "source": COUNTER_PROGRAM,
                                 "iterations": 5})
            assert reply["ok"] is True
            assert reply["checksum"] == _oracle(5)
            assert reply["outputs"] == 5
        finally:
            pool.close()

    def test_injected_kill_is_retried_once(self):
        pool = WorkerPool(size=1, job_timeout=60)
        try:
            with inject(_OneShotPlan("worker-kill")):
                reply = pool.submit({"kind": "interp",
                                     "source": COUNTER_PROGRAM,
                                     "iterations": 4})
            assert reply["ok"] is True
            assert reply["checksum"] == _oracle(4)
            assert pool.crashes == 1
            assert pool.retries == 1
        finally:
            pool.close()

    def test_kill_on_both_attempts_is_pool_exhausted(self):
        pool = WorkerPool(size=1, job_timeout=60)
        try:
            with inject(FaultPlan.parse("worker-kill:1")):
                with pytest.raises(pool_mod.PoolExhausted):
                    pool.submit({"kind": "interp",
                                 "source": COUNTER_PROGRAM,
                                 "iterations": 4})
            assert pool.crashes == 2
        finally:
            pool.close()

    def test_hang_is_caught_by_deadline_and_retried(self):
        pool = WorkerPool(size=1, job_timeout=1.5)
        try:
            with inject(_OneShotPlan("worker-hang")):
                reply = pool.submit({"kind": "interp",
                                     "source": COUNTER_PROGRAM,
                                     "iterations": 4})
            assert reply["ok"] is True
            assert pool.hangs == 1
        finally:
            pool.close()

    def test_close_leaves_no_worker_processes(self):
        pool = WorkerPool(size=2, job_timeout=60)
        pool.submit({"kind": "interp", "source": COUNTER_PROGRAM,
                     "iterations": 2})
        pids = list(pool.all_pids)
        assert pids
        pool.close()
        deadline = time.monotonic() + 3.0
        while pool.live_pids() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert pool.live_pids() == []
        for pid in pids:
            with pytest.raises((ProcessLookupError, PermissionError)):
                os.kill(pid, 0)

    def test_job_level_compile_error_is_structured_not_a_crash(self):
        pool = WorkerPool(size=1, job_timeout=60)
        try:
            reply = pool.submit({"kind": "interp",
                                 "source": "this is not a program",
                                 "iterations": 2})
            assert reply["ok"] is False
            assert reply["kind"] == "compile-error"
            assert pool.crashes == 0  # the worker survived the bad job
            # ...and is still serviceable afterwards.
            again = pool.submit({"kind": "interp",
                                 "source": COUNTER_PROGRAM,
                                 "iterations": 3})
            assert again["ok"] is True
        finally:
            pool.close()

    def test_resource_exhausted_crosses_the_pipe(self):
        pool = WorkerPool(size=1, job_timeout=60)
        try:
            reply = pool.submit({"kind": "interp",
                                 "source": COUNTER_PROGRAM,
                                 "iterations": 3, "limits": "ops=1"})
            assert reply["ok"] is False
            assert reply["kind"] == "resource-exhausted"
            assert reply["resource"]
        finally:
            pool.close()


# -- admission queue + circuit breaker ---------------------------------------

class TestAdmissionQueue:
    def test_admits_within_capacity(self):
        queue = AdmissionQueue(capacity=2)
        with queue.admit():
            with queue.admit():
                assert queue.stats()["active"] == 2

    def test_sheds_when_queue_full(self):
        queue = AdmissionQueue(capacity=1, queue_limit=0)
        release = threading.Event()

        def hold():
            with queue.admit():
                release.wait(timeout=5)

        holder = threading.Thread(target=hold, daemon=True)
        holder.start()
        deadline = time.monotonic() + 2
        while queue.stats()["active"] < 1 \
                and time.monotonic() < deadline:
            time.sleep(0.005)
        with pytest.raises(ShedRequest) as info:
            with queue.admit():
                pass
        assert info.value.retry_after > 0
        release.set()
        holder.join()

    def test_deadline_expiry_sheds_while_queued(self):
        queue = AdmissionQueue(capacity=1, queue_limit=4)
        release = threading.Event()

        def hold():
            with queue.admit():
                release.wait(timeout=5)

        holder = threading.Thread(target=hold, daemon=True)
        holder.start()
        deadline = time.monotonic() + 2
        while queue.stats()["active"] < 1 \
                and time.monotonic() < deadline:
            time.sleep(0.005)
        started = time.monotonic()
        with pytest.raises(ShedRequest):
            with queue.admit(deadline=0.1):
                pass
        assert time.monotonic() - started < 2.0
        release.set()
        holder.join()

    def test_service_estimate_tracks_completions(self):
        queue = AdmissionQueue(capacity=1)
        before = queue.service_estimate()
        with queue.admit():
            time.sleep(0.05)
        assert queue.service_estimate() != before


class TestCircuitBreaker:
    def test_opens_after_threshold_and_caches_the_error(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60)
        for _ in range(3):
            breaker.failure("key1", "cc exploded")
        with pytest.raises(CircuitOpenError) as info:
            breaker.check("key1")
        assert "cc exploded" in str(info.value)
        assert info.value.retry_after > 0
        assert breaker.state("key1") == "open"
        # Other keys are unaffected.
        breaker.check("key2")

    def test_below_threshold_stays_closed(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60)
        breaker.failure("key", "boom")
        breaker.failure("key", "boom")
        breaker.check("key")
        assert breaker.state("key") == "closed"

    def test_half_open_probe_then_close_on_success(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.failure("key", "boom")
        with pytest.raises(CircuitOpenError):
            breaker.check("key")
        time.sleep(0.08)
        breaker.check("key")  # the half-open probe gets through...
        with pytest.raises(CircuitOpenError):
            breaker.check("key")  # ...but only one of them
        breaker.success("key")
        breaker.check("key")
        assert breaker.state("key") == "closed"

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.failure("key", "boom")
        time.sleep(0.08)
        breaker.check("key")
        breaker.failure("key", "boom again")
        with pytest.raises(CircuitOpenError) as info:
            breaker.check("key")
        assert "boom again" in str(info.value)


# -- the daemon under injected worker faults ----------------------------------

class TestServeUnderFaults:
    @pytest.fixture()
    def server(self, tmp_path):
        instance = ServeServer(socket_path=tmp_path / "d.sock",
                               cache=ArtifactCache(tmp_path / "cache"),
                               workers=1, job_timeout=20,
                               ledger=False).start()
        yield instance
        instance.stop()

    @pytest.fixture()
    def client(self, server):
        handle = ServeClient(socket_path=server.socket_path)
        assert handle.wait_ready()
        return handle

    def test_worker_kill_recovery(self, server, client):
        with inject(_OneShotPlan("worker-kill")):
            response = client.run(source=COUNTER_PROGRAM, route="interp",
                                  iterations=6)
        assert response.status == 200
        assert response.json["checksum"] == _oracle(6)
        health = client.healthz().json
        assert health["pool"]["crashes"] == 1
        assert health["pool"]["retries"] == 1

    def test_worker_kill_exhausted_maps_to_503(self, server, client):
        with inject(FaultPlan.parse("worker-kill:1")):
            response = client.run(source=COUNTER_PROGRAM, route="interp",
                                  iterations=6)
        assert response.status == 503
        body = response.json
        assert body["kind"] == "worker-crashed"
        assert body["exit_code"] == 4
        # The daemon survives and serves the next request normally.
        ok = client.run(source=COUNTER_PROGRAM, route="interp",
                        iterations=6)
        assert ok.status == 200
        assert ok.json["checksum"] == _oracle(6)

    def test_healthz_reports_supervision_state(self, client):
        body = client.healthz().json
        assert body["status"] == "ok"
        for section in ("pool", "admission", "breaker"):
            assert section in body
        assert body["admission"]["capacity"] >= 1

    def test_bad_deadline_ms_is_a_usage_error(self, client):
        response = client.run(source=COUNTER_PROGRAM, iterations=2,
                              deadline_ms=-5)
        assert response.status == 400

    def test_shed_carries_retry_after_header(self, server, client):
        class _AlwaysShed:
            def admit(self, deadline=None):
                raise ShedRequest("overloaded (test)", retry_after=2.2)

            def stats(self):
                return {"capacity": 0}

        original = server.admission
        server.admission = _AlwaysShed()
        try:
            response = client.run(source=COUNTER_PROGRAM, iterations=2)
        finally:
            server.admission = original
        assert response.status == 429
        assert response.json["kind"] == "shed"
        assert response.headers.get("retry-after") == "3"

    def test_circuit_opens_on_repeated_build_failures(self, server,
                                                      client):
        with inject(FaultPlan.parse("cc-missing:1")):
            for _ in range(server.breaker.threshold):
                response = client.run(source=COUNTER_PROGRAM,
                                      route="native", iterations=2)
                assert response.status == 503
                assert response.json["kind"] == "native-compile"
            # The circuit is open now: fail fast, cached error, hint.
            response = client.run(source=COUNTER_PROGRAM, route="native",
                                  iterations=2)
            assert response.status == 503
            assert response.json["kind"] == "circuit-open"
            assert "retry-after" in response.headers
            # auto degrades through the open circuit to the interpreter.
            degraded = client.run(source=COUNTER_PROGRAM, route="auto",
                                  iterations=3)
            assert degraded.status == 200
            assert degraded.json["route"] == "interp"
            assert degraded.json["degraded"] is True
            assert degraded.json["checksum"] == _oracle(3)


# -- graceful drain -----------------------------------------------------------

SLOW_ITERATIONS = 400_000  # ~1.5 s of interpreter work


class TestDrain:
    def test_drain_waits_for_inflight(self, tmp_path):
        server = ServeServer(socket_path=tmp_path / "d.sock",
                             cache=ArtifactCache(tmp_path / "cache"),
                             workers=1, ledger=False,
                             max_iterations=SLOW_ITERATIONS).start()
        client = ServeClient(socket_path=server.socket_path)
        assert client.wait_ready()
        result = {}

        def slow_run():
            result["response"] = client.run(source=COUNTER_PROGRAM,
                                            route="interp",
                                            iterations=SLOW_ITERATIONS)

        thread = threading.Thread(target=slow_run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            # /healthz counts itself, so "something else in flight" is 2.
            if client.healthz().json["inflight"] >= 2:
                break
            time.sleep(0.01)
        else:
            pytest.fail("slow request never showed up in flight")
        assert server.drain(timeout=30) is True
        thread.join(timeout=30)
        response = result["response"]
        assert response.status == 200
        assert response.json["checksum"] == _oracle(SLOW_ITERATIONS)
        # The listener is gone: new connections are refused outright.
        with pytest.raises(OSError):
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                raw.connect(str(server.socket_path))
            finally:
                raw.close()
        server.stop()  # idempotent after drain

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        sock = tmp_path / "daemon.sock"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(__file__).resolve().parent.parent / "src")]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
               if p])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket",
             str(sock), "--no-access-log", "--workers", "1",
             "--drain-timeout", "30",
             "--max-iterations", str(SLOW_ITERATIONS),
             "--cache-dir", str(tmp_path / "cache")],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            client = ServeClient(socket_path=sock)
            assert client.wait_ready(timeout=30)
            result = {}

            def slow_run():
                result["response"] = client.run(
                    source=COUNTER_PROGRAM, route="interp",
                    iterations=SLOW_ITERATIONS)

            thread = threading.Thread(target=slow_run, daemon=True)
            thread.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if client.healthz().json["inflight"] >= 2:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("slow request never showed up in flight")
            proc.send_signal(signal.SIGTERM)
            stderr = proc.communicate(timeout=60)[1].decode()
            # Full drain → deterministic exit 0, and the in-flight
            # request completed with the right bits.
            assert proc.returncode == 0, stderr
            assert "draining" in stderr
            thread.join(timeout=30)
            response = result["response"]
            assert response.status == 200
            assert response.json["checksum"] == _oracle(SLOW_ITERATIONS)
            assert not sock.exists()  # socket unlinked on the way out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


# -- crash-safe persistent state ----------------------------------------------

class TestCacheCrashSafety:
    def test_scrub_quarantines_partial_publish(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stage = cache.tmp_dir / "deadbeef"
        stage.mkdir(parents=True)
        (stage / "prog.c").write_text("int main(){}")
        report = cache.scrub()
        assert report["stale_tmp"] == 1
        assert not stage.exists()
        assert cache.tmp_dir.is_dir() or not list(
            cache.tmp_dir.iterdir() if cache.tmp_dir.is_dir() else [])

    def test_scrub_quarantines_torn_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        entry = cache.entry_path("ab" * 32)
        entry.mkdir(parents=True)
        (entry / "meta.json").write_text('{"artifacts": ["missing.bin"]')
        report = cache.scrub()
        assert report["quarantined"] == 1
        assert not entry.exists()

    def test_lookup_tolerates_concurrent_eviction(self, tmp_path):
        import shutil

        cache = ArtifactCache(tmp_path)
        key = "cd" * 32
        cache.publish(key, {"backend": "laminar-c"},
                      {"prog.c": "int main(){}"})
        assert cache.lookup(key) is not None
        # Simulate `cache gc` racing a live daemon: the entry vanishes
        # between requests; the next lookup is a plain miss, not an
        # exception and not a quarantine.
        shutil.rmtree(cache.entry_path(key))
        assert cache.lookup(key) is None

    def test_entries_tolerate_vanishing_dirs(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache._entries() == []
        assert cache.size() == (0, 0)

    def test_publish_survives_fsync_failures(self, tmp_path,
                                             monkeypatch):
        from repro.cache import store

        monkeypatch.setattr(store.os, "fsync",
                            lambda fd: (_ for _ in ()).throw(
                                OSError("no fsync here")))
        cache = ArtifactCache(tmp_path)
        entry = cache.publish("ef" * 32, {"backend": "laminar-c"},
                              {"prog.c": "int main(){}"})
        assert entry is not None
        assert cache.lookup("ef" * 32) is not None


class TestLedgerCrashSafety:
    def test_truncated_record_warns_and_is_skipped(self, tmp_path):
        good = obs_ledger.append(
            obs_ledger.make_body("run", "t1", checksum="00"),
            tmp_path)
        # A crash mid-append leaves a half-written claim file.
        (tmp_path / "000002.json").write_text('{"record_id": "tr')
        with pytest.warns(RuntimeWarning, match="unparseable"):
            records = obs_ledger.load_records(tmp_path)
        assert [env["record_id"] for env in records] \
            == [good["record_id"]]

    def test_append_then_load_roundtrip(self, tmp_path):
        body = obs_ledger.make_body("run", "t2", checksum="ff")
        envelope = obs_ledger.append(body, tmp_path)
        records = obs_ledger.load_records(tmp_path)
        assert records[-1]["record_id"] == envelope["record_id"]


class TestTailTruncation:
    def test_truncated_trailing_line_warns(self, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "access.jsonl"
        record = {"type": "access", "wall_time": 0.0, "request_id": "r1",
                  "method": "POST", "route": "/run", "status": 200,
                  "duration_ms": 1.0}
        log.write_text(json.dumps(record) + "\n"
                       + json.dumps(record)[:25])
        assert main(["tail", str(log), "--color", "never"]) == 0
        captured = capsys.readouterr()
        assert "r1" in captured.out
        assert "truncated" in captured.err

    def test_unparseable_middle_line_warns_and_continues(self, tmp_path,
                                                         capsys):
        from repro.cli import main

        log = tmp_path / "access.jsonl"
        record = {"type": "access", "wall_time": 0.0, "request_id": "r2",
                  "method": "POST", "route": "/run", "status": 200,
                  "duration_ms": 1.0}
        log.write_text('{"half a rec\n' + json.dumps(record) + "\n")
        assert main(["tail", str(log), "--color", "never"]) == 0
        captured = capsys.readouterr()
        assert "r2" in captured.out
        assert "unparseable" in captured.err


# -- client retry -------------------------------------------------------------

class TestClientRetry:
    def test_connection_refused_is_retried_once(self, tmp_path):
        server = ServeServer(socket_path=tmp_path / "d.sock",
                             cache=ArtifactCache(tmp_path / "cache"),
                             workers=0, ledger=False).start()
        try:
            client = ServeClient(socket_path=server.socket_path)
            real = client._connection
            attempts = []

            def flaky():
                attempts.append(1)
                if len(attempts) == 1:
                    raise ConnectionRefusedError("starting up")
                return real()

            client._connection = flaky
            response = client.healthz()
            assert response.ok
            assert len(attempts) == 2
        finally:
            server.stop()

    def test_gives_up_after_one_retry(self, tmp_path):
        client = ServeClient(socket_path=tmp_path / "never.sock",
                             connect_timeout=0.5)
        started = time.monotonic()
        with pytest.raises((ConnectionRefusedError, FileNotFoundError)):
            client.request("GET", "/healthz")
        assert time.monotonic() - started < 5.0

    def test_timeout_knobs(self):
        client = ServeClient(port=1, connect_timeout=3.5,
                             read_timeout=7.5)
        assert client.connect_timeout == 3.5
        assert client.timeout == 7.5
        connection = client._connection()
        assert connection.connect_timeout == 3.5
        assert connection.timeout == 7.5


# -- the chaos harness (smoke-sized) ------------------------------------------

class TestChaosHarness:
    def test_small_campaign_is_clean(self):
        from repro.serve import chaos

        report = chaos.run_campaign(seed=7, requests=20, clients=4,
                                    kill_rate=0.3, route="interp",
                                    iterations=4, workers=2, variants=2)
        assert report.ok, report.to_dict()
        assert report.issued == 20
        assert report.bit_wrong == 0
        assert report.orphan_workers == 0
        assert report.leaked_dirs == []
        assert report.injected.get("worker-kill", 0) > 0

    def test_report_shape(self):
        from repro.serve.chaos import ChaosReport

        report = ChaosReport(seed=1, requests=10)
        summary = report.to_dict()
        for field in ("seed", "requests", "succeeded", "bit_wrong",
                      "success_rate", "orphan_workers", "leaked_dirs",
                      "ok"):
            assert field in summary
