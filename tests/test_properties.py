"""Property-based tests (hypothesis) for core invariants:

* 32-bit wrapping arithmetic laws,
* compile-time vs run-time evaluator agreement,
* the RNG contract shared with the C runtime,
* random stream pipelines: scheduling invariants and FIFO/LaminarIR
  output equivalence,
* random straight-line LaminarIR programs: the optimizer preserves
  semantics exactly.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings, strategies as st

from repro import compile_source
from repro.backend.common import checksum_outputs
from repro.frontend.errors import UNKNOWN_LOCATION
from repro.frontend.intrinsics import XorShift32
from repro.frontend.types import FLOAT, INT
from repro.graph.builder import apply_binary
from repro.interp import LaminarInterpreter
from repro.interp.values import runtime_binary
from repro.lir import (BinOp, CallOp, PrintOp, Program, SelectOp, StateSlot,
                       StoreOp, Temp, const_int, wrap_i32)
from repro.lir.ops import LoadOp
from repro.opt import optimize
from repro.scheduling.balance import steady_state_token_counts

i32s = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
any_ints = st.integers(min_value=-(2 ** 40), max_value=2 ** 40)
small_floats = st.floats(min_value=-1e6, max_value=1e6,
                         allow_nan=False, allow_infinity=False)

_SAFE_INT_OPS = ("+", "-", "*", "&", "|", "^")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


class TestWrapI32:
    @given(any_ints)
    def test_range(self, value):
        wrapped = wrap_i32(value)
        assert -(2 ** 31) <= wrapped < 2 ** 31

    @given(any_ints)
    def test_idempotent(self, value):
        assert wrap_i32(wrap_i32(value)) == wrap_i32(value)

    @given(any_ints)
    def test_congruent_mod_2_32(self, value):
        assert (wrap_i32(value) - value) % (2 ** 32) == 0

    @given(i32s)
    def test_identity_in_range(self, value):
        assert wrap_i32(value) == value


class TestEvaluatorAgreement:
    @given(i32s, i32s, st.sampled_from(_SAFE_INT_OPS))
    def test_int_ops_agree(self, left, right, op):
        compile_time = wrap_i32(apply_binary(op, left, right,
                                             UNKNOWN_LOCATION, ""))
        run_time = runtime_binary(op, left, right)
        assert compile_time == run_time

    @given(i32s, i32s, st.sampled_from(_CMP_OPS))
    def test_comparisons_agree(self, left, right, op):
        assert apply_binary(op, left, right, UNKNOWN_LOCATION, "") == \
            runtime_binary(op, left, right)

    @given(i32s, i32s.filter(lambda v: v != 0))
    def test_division_agrees_and_truncates(self, left, right):
        compile_time = apply_binary("/", left, right, UNKNOWN_LOCATION, "")
        run_time = runtime_binary("/", left, right)
        assert compile_time == run_time
        # C semantics: (a/b)*b + a%b == a
        remainder = runtime_binary("%", left, right)
        assert run_time * right + remainder == left

    @given(small_floats, small_floats,
           st.sampled_from(("+", "-", "*")))
    def test_float_ops_agree(self, left, right, op):
        assert apply_binary(op, left, right, UNKNOWN_LOCATION, "") == \
            runtime_binary(op, left, right)


class TestRng:
    def test_sequence_is_fixed(self):
        rng = XorShift32()
        first_five = [rng.next_u32() for _ in range(5)]
        # Pinned: the C runtime implements the identical recurrence, so
        # this sequence is part of the cross-language contract.
        assert first_five == [2274908837, 358294691, 1210119364, 2176035992, 1882851208]

    @given(st.integers(min_value=1, max_value=2 ** 31 - 1))
    def test_randi_in_bounds(self, bound):
        rng = XorShift32(seed=123)
        for _ in range(16):
            value = rng.randi(bound)
            assert 0 <= value < bound

    def test_randf_in_unit_interval(self):
        rng = XorShift32()
        for _ in range(1000):
            value = rng.randf()
            assert 0.0 <= value < 1.0

    def test_randf_exactly_representable(self):
        # (x >> 8) / 2^24 is exact in a double: multiplying back must be
        # lossless, which is what makes Python/C outputs bit-identical.
        rng = XorShift32()
        for _ in range(100):
            state = rng.state
            value = XorShift32(state).randf()
            rng.next_u32()
            assert value * (1 << 24) == float(int(value * (1 << 24)))

    @given(st.lists(st.floats(allow_nan=False), max_size=8))
    def test_checksum_deterministic(self, values):
        assert checksum_outputs(values) == checksum_outputs(values)


# -- random stream pipelines ---------------------------------------------------

_STAGES = st.lists(
    st.one_of(
        st.tuples(st.just("scale"),
                  st.floats(min_value=-2, max_value=2,
                            allow_nan=False).map(lambda f: round(f, 3))),
        st.tuples(st.just("window"), st.integers(2, 4)),
        st.tuples(st.just("up"), st.integers(2, 3)),
        st.tuples(st.just("down"), st.integers(2, 3)),
        st.tuples(st.just("splitjoin"), st.integers(2, 3)),
    ),
    min_size=0, max_size=4)


def _pipeline_source(stages) -> str:
    decls = ["void->float filter Src() { work push 1 { push(randf()); } }",
             "float->void filter Snk() { work pop 1 { println(pop()); } }"]
    adds = ["add Src();"]
    for index, (kind, arg) in enumerate(stages):
        name = f"S{index}"
        if kind == "scale":
            decls.append(
                f"float->float filter {name}() {{ work push 1 pop 1 "
                f"{{ push(pop() * {arg}); }} }}")
            adds.append(f"add {name}();")
        elif kind == "window":
            decls.append(
                f"float->float filter {name}() {{ work push 1 pop 1 "
                f"peek {arg} {{ float s = 0; "
                f"for (int i = 0; i < {arg}; i++) s += peek(i); "
                f"push(s); pop(); }} }}")
            adds.append(f"add {name}();")
        elif kind == "up":
            decls.append(
                f"float->float filter {name}() {{ work push {arg} pop 1 "
                f"{{ float v = pop(); "
                f"for (int i = 0; i < {arg}; i++) push(v + i); }} }}")
            adds.append(f"add {name}();")
        elif kind == "down":
            decls.append(
                f"float->float filter {name}() {{ work push 1 pop {arg} "
                f"{{ push(pop()); "
                f"for (int i = 1; i < {arg}; i++) pop(); }} }}")
            adds.append(f"add {name}();")
        else:  # splitjoin of `arg` identity branches
            decls.append(
                f"float->float filter {name}() {{ work push 1 pop 1 "
                f"{{ push(pop()); }} }}")
            branches = " ".join(f"add {name}();" for _ in range(arg))
            adds.append(
                f"add splitjoin {{ split duplicate; {branches} "
                f"join roundrobin; }};")
    adds.append("add Snk();")
    decls.append("void->void pipeline P { " + " ".join(adds) + " }")
    return "\n".join(decls)


class TestRandomPipelines:
    @settings(max_examples=25, deadline=None)
    @given(_STAGES)
    def test_equivalence_and_schedule_invariants(self, stages):
        stream = compile_source(_pipeline_source(stages))
        # balance equations hold
        counts = steady_state_token_counts(stream.graph,
                                           stream.schedule.reps)
        assert all(v > 0 for v in counts.values())
        # both routes agree
        fifo = stream.run_fifo(3)
        laminar = stream.run_laminar(3)
        assert fifo.outputs == laminar.outputs
        # LaminarIR never does more work than the baseline
        assert laminar.steady_counters.total_ops <= \
            fifo.steady_counters.total_ops


# -- random LaminarIR programs ----------------------------------------------------


@st.composite
def _lir_programs(draw):
    """A random straight-line int program over a small state array."""
    program = Program(name="random")
    slot = StateSlot("mem", INT, size=4)
    program.state_slots = [slot]
    pool: list = [const_int(draw(i32s)) for _ in range(2)]

    def fresh(section, op):
        section.append(op)
        if op.result is not None:
            pool.append(op.result)

    for section in (program.setup, program.steady):
        for _ in range(draw(st.integers(3, 12))):
            choice = draw(st.integers(0, 5))
            if choice <= 2:  # binop
                op = draw(st.sampled_from(_SAFE_INT_OPS))
                lhs, rhs = draw(st.sampled_from(pool)), \
                    draw(st.sampled_from(pool))
                fresh(section, BinOp(result=Temp(INT), op=op, lhs=lhs,
                                     rhs=rhs))
            elif choice == 3:  # select on a comparison
                cmp_op = draw(st.sampled_from(_CMP_OPS))
                from repro.frontend.types import BOOLEAN
                cond = Temp(BOOLEAN)
                section.append(BinOp(result=cond, op=cmp_op,
                                     lhs=draw(st.sampled_from(pool)),
                                     rhs=draw(st.sampled_from(pool))))
                fresh(section, SelectOp(result=Temp(INT), cond=cond,
                                        then=draw(st.sampled_from(pool)),
                                        otherwise=draw(
                                            st.sampled_from(pool))))
            elif choice == 4:  # store
                section.append(StoreOp(
                    result=None, slot=slot,
                    index=const_int(draw(st.integers(0, 3))),
                    value=draw(st.sampled_from(pool))))
            else:  # load
                fresh(section, LoadOp(result=Temp(INT), slot=slot,
                                      index=const_int(
                                          draw(st.integers(0, 3)))))
        section.append(PrintOp(result=None,
                               value=draw(st.sampled_from(pool))))
    # one impure op to check effect ordering survives
    rand = CallOp(result=Temp(INT), name="randi", args=[const_int(100)],
                  pure=False)
    program.steady.append(rand)
    program.steady.append(PrintOp(result=None, value=rand.result))
    return program


class TestSchedulerSemantics:
    @settings(max_examples=30, deadline=None)
    @given(_lir_programs())
    def test_pressure_scheduling_preserves_outputs(self, program):
        from repro.opt.schedule_ops import schedule_for_pressure
        reference = LaminarInterpreter(copy.deepcopy(program)).run(3)
        scheduled = copy.deepcopy(program)
        schedule_for_pressure(scheduled)
        result = LaminarInterpreter(scheduled).run(3)
        assert result.outputs == reference.outputs


class TestOptimizerSemantics:
    @settings(max_examples=40, deadline=None)
    @given(_lir_programs())
    def test_optimize_preserves_outputs(self, program):
        reference = LaminarInterpreter(copy.deepcopy(program)).run(3)
        optimized_program = copy.deepcopy(program)
        optimize(optimized_program)
        optimized = LaminarInterpreter(optimized_program).run(3)
        assert optimized.outputs == reference.outputs

    @settings(max_examples=20, deadline=None)
    @given(_lir_programs())
    def test_optimize_never_increases_ops(self, program):
        before = sum(len(ops) for _t, ops in program.sections())
        optimize(program)
        after = sum(len(ops) for _t, ops in program.sections())
        assert after <= before


# -- random filter bodies (source-level fuzzing) --------------------------------


@st.composite
def _float_exprs(draw, depth=0):
    """A random float-typed expression over `peek(0..2)` and literals."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return f"peek({draw(st.integers(0, 2))})"
        if choice == 1:
            return repr(round(draw(st.floats(
                min_value=-4, max_value=4, allow_nan=False)), 3))
        if choice == 2:
            return "v"
        return f"sin(peek({draw(st.integers(0, 2))}))"
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(_float_exprs(depth=depth + 1))
    right = draw(_float_exprs(depth=depth + 1))
    if draw(st.booleans()):
        cmp_op = draw(st.sampled_from(["<", ">", "<=", ">="]))
        third = draw(_float_exprs(depth=depth + 1))
        return (f"(({left}) {cmp_op} ({right}) ? ({third}) "
                f": ({left}) {op} ({right}))")
    return f"(({left}) {op} ({right}))"


@st.composite
def _filter_bodies(draw):
    """A random work body: locals, a static loop, a dynamic ternary."""
    lines = ["float v = peek(0);"]
    for index in range(draw(st.integers(0, 3))):
        lines.append(f"float x{index} = {draw(_float_exprs())};")
        lines.append(f"v = v + x{index};")
    if draw(st.booleans()):
        bound = draw(st.integers(1, 4))
        lines.append(f"for (int i = 0; i < {bound}; i++) "
                     f"v = v * 0.9 + {draw(_float_exprs())};")
    lines.append(f"push({draw(_float_exprs())} + v);")
    lines.append("pop();")
    return "\n      ".join(lines)


class TestRandomFilterBodies:
    @settings(max_examples=30, deadline=None)
    @given(_filter_bodies())
    def test_fuzzed_body_equivalence(self, body):
        source = f"""
        void->float filter Src() {{ work push 1 {{ push(randf()); }} }}
        float->void filter Snk() {{ work pop 1 {{ println(pop()); }} }}
        float->float filter Fuzz() {{
          work push 1 pop 1 peek 3 {{
            {body}
          }}
        }}
        void->void pipeline P {{ add Src(); add Fuzz(); add Snk(); }}
        """
        stream = compile_source(source)
        fifo = stream.run_fifo(4)
        laminar = stream.run_laminar(4)
        assert fifo.outputs == laminar.outputs


class TestParserRobustness:
    """Malformed input must raise CompileError, never crash."""

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="filter work push pop peek {}()[];=+-*/<>! "
                            "0123456789.fx\n\t\"", max_size=120))
    def test_garbage_never_crashes(self, text):
        from repro.frontend.errors import CompileError
        from repro.frontend import parse_and_check
        try:
            parse_and_check(text)
        except CompileError:
            pass  # any diagnostic is acceptable; crashes are not

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 400))
    def test_truncated_program_never_crashes(self, cut):
        from repro.frontend.errors import CompileError
        from repro.frontend import parse_and_check
        whole = (
            "float->float filter F(int n) { float[n] w; "
            "init { for (int i = 0; i < n; i++) w[i] = sin(i); } "
            "work push 1 pop 1 peek n { float s = 0; "
            "for (int i = 0; i < n; i++) s += peek(i) * w[i]; "
            "push(s); pop(); } }"
            "void->void pipeline P { add F(4); }")
        try:
            parse_and_check(whole[:cut])
        except CompileError:
            pass
