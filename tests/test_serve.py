"""The serve daemon: round-trips over a Unix socket, errors, dedup."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cache import ArtifactCache
from repro.serve import ServeClient, ServeServer

from .conftest import TINY_PROGRAM, requires_cc

COUNTER_PROGRAM_TEMPLATE = """
void->int filter Count%(tag)s() {
  int x;
  init { x = %(start)s; }
  work push 1 {
    push(x);
    x = x + 1;
  }
}

int->void filter Drop%(tag)s() {
  work pop 1 { println(pop()); }
}

void->void pipeline Counting%(tag)s {
  add Count%(tag)s();
  add Drop%(tag)s();
}
"""


def _program(tag: str, start: int = 0) -> str:
    return COUNTER_PROGRAM_TEMPLATE % {"tag": tag, "start": start}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve")
    instance = ServeServer(socket_path=root / "d.sock",
                           cache=ArtifactCache(root / "cache"),
                           max_iterations=4096).start()
    yield instance
    instance.stop()


@pytest.fixture(scope="module")
def client(server):
    handle = ServeClient(socket_path=server.socket_path)
    assert handle.wait_ready()
    return handle


class TestPlumbing:
    def test_healthz(self, client):
        body = client.healthz().json
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0

    def test_unknown_endpoint_404(self, client):
        response = client.request("GET", "/nope")
        assert response.status == 404
        assert response.json["exit_code"] == 2

    def test_metrics_exposition(self, client):
        text = client.metrics()
        assert text.rstrip().endswith("# EOF")
        assert "repro_serve_requests_total" in text

    def test_cache_stats_endpoint(self, client, server):
        stats = client.cache_stats()
        assert stats["root"] == str(server.cache.root)
        assert "entries" in stats and "bytes" in stats

    def test_tcp_transport_too(self, tmp_path):
        instance = ServeServer(port=0,
                               cache=ArtifactCache(tmp_path)).start()
        try:
            tcp = ServeClient(host=instance.host, port=instance.port)
            assert tcp.wait_ready()
            assert tcp.healthz().json["status"] == "ok"
        finally:
            instance.stop()


class TestValidation:
    def test_body_must_be_json(self, client):
        response = client.request("POST", "/run", None)
        assert response.status == 400

    def test_source_xor_benchmark(self, client):
        response = client.run(source="x", benchmark="filterbank",
                              iterations=4)
        assert (response.status, response.json["exit_code"]) == (400, 2)
        response = client.run(iterations=4)
        assert response.status == 400

    def test_unknown_benchmark(self, client):
        response = client.run(benchmark="quicksort", iterations=4)
        assert response.status == 400
        assert "quicksort" in response.json["error"]

    def test_unknown_backend_and_route(self, client):
        assert client.run(benchmark="autocor", backend="jit",
                          iterations=4).status == 400
        assert client.run(benchmark="autocor", route="carrier-pigeon",
                          iterations=4).status == 400

    def test_bad_pipeline_rejected(self, client):
        response = client.compile(benchmark="autocor",
                                  pipeline="fold,launder")
        assert response.status == 400
        assert "launder" in response.json["error"]

    def test_bad_iterations(self, client):
        assert client.run(benchmark="autocor",
                          iterations=-1).status == 400
        assert client.run(benchmark="autocor",
                          iterations="many").status == 400

    def test_compile_error_maps_to_422(self, client):
        response = client.compile(source="void->void pipeline P { }")
        assert response.status == 422
        assert response.json["exit_code"] == 1
        assert response.json["kind"] == "compile-error"


class TestAdmission:
    def test_iterations_cap_rejected_429(self, client):
        response = client.run(benchmark="autocor", iterations=5000)
        assert response.status == 429
        body = response.json
        assert body["kind"] == "resource-exhausted"
        assert body["exit_code"] == 3

    def test_request_limits_reject_cold_compile(self, client):
        response = client.run(source=_program("Admit"), iterations=4,
                              route="interp", limits="ops=1")
        assert response.status == 429
        body = response.json
        assert body["exit_code"] == 3
        assert body["resource"] == "max_unrolled_ops"

    def test_bad_limits_spec_is_usage(self, client):
        response = client.run(benchmark="autocor", iterations=4,
                              limits="volts=9")
        assert response.status == 400


class TestInterpRoute:
    def test_run_interp(self, client):
        response = client.run(source=_program("Interp"), iterations=8,
                              route="interp")
        assert response.ok, response.text
        body = response.json
        assert body["route"] == "interp"
        assert body["outputs"] == 8
        assert len(body["checksum"]) == 16

    def test_stream_memo_hit_on_second_request(self, client):
        first = client.run(source=_program("Memo"), iterations=4,
                           route="interp").json
        second = client.run(source=_program("Memo"), iterations=4,
                            route="interp").json
        assert first["stream_cached"] is False
        assert second["stream_cached"] is True
        assert first["checksum"] == second["checksum"]


@requires_cc
class TestNativeRoute:
    def test_cold_then_hot_compile(self, client):
        source = _program("Native")
        cold = client.compile(source=source)
        assert cold.ok, cold.text
        assert cold.json["cache_hit"] is False
        hot = client.compile(source=source)
        assert hot.json["cache_hit"] is True
        assert hot.json["key"] == cold.json["key"]
        assert hot.json["components"]["backend"] == "laminar-c"

    def test_run_native_bit_exact_vs_interp(self, client):
        source = _program("Exact")
        native = client.run(source=source, iterations=16).json
        interp = client.run(source=source, iterations=16,
                            route="interp").json
        assert native["route"] == "native"
        assert native["degraded"] is False
        assert native["checksum"] == interp["checksum"]
        assert native["outputs"] == interp["outputs"]

    def test_distinct_options_distinct_keys(self, client):
        source = _program("Opts")
        default = client.compile(source=source).json
        unopt = client.compile(source=source, no_opt=True).json
        assert default["key"] != unopt["key"]

    def test_run_appends_serve_ledger_record(self, client):
        from repro.obs import ledger as obs_ledger

        response = client.run(source=_program("Ledger"),
                              iterations=8).json
        records = [record for record
                   in obs_ledger.load_records(target="CountingLedger")
                   if record["body"]["kind"] == "serve"]
        assert records, "no serve ledger record appended"
        body = records[-1]["body"]
        assert body["checksum"] == response["checksum"]
        assert body["flags"]["route"] == "native"

    def test_concurrent_compiles_build_once(self, client, server):
        source = _program("Flight")
        results = []
        barrier = threading.Barrier(4)

        def spin():
            # One connection per thread; all fire together at a cold key.
            mine = ServeClient(socket_path=server.socket_path)
            barrier.wait()
            results.append(mine.compile(source=source).json)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 4
        assert len({body["key"] for body in results}) == 1
        misses = [body for body in results if not body["cache_hit"]]
        assert len(misses) == 1, "single-flight dedup built more than once"

    def test_fifo_backend_round_trip(self, client):
        response = client.run(source=_program("Fifo"), iterations=8,
                              backend="fifo-c").json
        assert response["route"] == "native"
        assert response["backend"] == "fifo-c"


class TestCliSurface:
    def test_cache_stats_cli(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        text = capsys.readouterr().out
        assert "entries:     0" in text

    def test_cache_stats_cli_json(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "stats", "--json",
                     "--dir", str(tmp_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 0
        assert stats["root"] == str(tmp_path)

    def test_cache_gc_and_clear_cli(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "gc", "--dir", str(tmp_path),
                     "--max-bytes", "0"]) == 0
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "cache clear" in capsys.readouterr().err

    @requires_cc
    def test_serve_self_check_cli(self, tmp_path):
        from repro.cli import main

        assert main(["serve", "--socket", str(tmp_path / "s.sock"),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--self-check"]) == 0


def _flatten_spans(nodes):
    for node in nodes:
        yield node
        yield from _flatten_spans(node["children"])


class TestObservability:
    def test_response_carries_request_identity(self, client):
        from repro.obs import reqctx

        response = client.healthz()
        rid = response.request_id
        assert rid is not None and len(rid) == 16
        assert int(rid, 16) is not None  # hex
        parsed = reqctx.parse_traceparent(response.headers["traceparent"])
        assert parsed is not None
        assert parsed[1] == rid  # the request id is the new parent-id

    def test_traceparent_round_trip_to_debug_trace(self, client):
        trace_id = "ab" * 16
        header = f"00-{trace_id}-{'cd' * 8}-01"
        response = client.run(source=_program("TraceRt"), iterations=4,
                              route="interp", traceparent=header)
        assert response.ok, response.text
        rid = response.request_id
        assert response.headers["traceparent"] == \
            f"00-{trace_id}-{rid}-01"
        entry = client.debug_trace(rid).json
        record = entry["record"]
        assert record["request_id"] == rid
        assert record["trace_id"] == trace_id
        assert record["traceparent_in"] == header
        assert record["route"] == "/run"
        assert record["run_route"] == "interp"
        assert record["status"] == 200
        roots = entry["spans"]
        assert [root["name"] for root in roots] == ["serve.request"]
        spans = list(_flatten_spans(roots))
        assert all(span["attrs"]["request_id"] == rid for span in spans)
        assert all(span["attrs"]["trace_id"] == trace_id
                   for span in spans)

    def test_invalid_traceparent_mints_fresh_ids(self, client):
        from repro.obs import reqctx

        response = client.request("GET", "/healthz",
                                  traceparent="00-banana-xyz-01")
        parsed = reqctx.parse_traceparent(response.headers["traceparent"])
        assert parsed is not None  # fresh, valid identity
        entry = client.debug_trace(response.request_id).json
        assert entry["record"]["traceparent_in"] is None

    def test_debug_requests_most_recent_first(self, client):
        first = client.healthz()
        second = client.request("GET", "/cache/stats")
        ids = [entry["record"]["request_id"]
               for entry in client.debug_requests()]
        assert ids.index(second.request_id) < ids.index(first.request_id)

    def test_debug_trace_unknown_is_404(self, client):
        response = client.debug_trace("ffffffffffffffff")
        assert response.status == 404
        assert response.json["exit_code"] == 2

    def test_healthz_enriched(self, client, server):
        body = client.healthz().json
        assert body["status"] == "ok"
        assert body["inflight"] >= 1  # at least this very request
        assert body["requests_total"] >= 1
        assert body["cache_root"] == str(server.cache.root)
        assert body["cache"]["entries"] >= 0
        assert body["cache"]["bytes"] >= 0
        assert body["ledger"]["enabled"] is True
        assert body["ledger"]["dir"]
        assert body["ledger"]["reachable"] is True

    def test_metrics_labeled_histogram_and_unit(self, client):
        import re

        from repro.obs.sinks import OPENMETRICS_CONTENT_TYPE

        client.run(source=_program("Mtr"), iterations=4, route="interp")
        response = client.request("GET", "/metrics")
        assert response.content_type == OPENMETRICS_CONTENT_TYPE
        text = response.text
        assert "# TYPE repro_serve_request_seconds summary" in text
        assert "# UNIT repro_serve_request_seconds seconds" in text
        assert re.search(r'repro_serve_request_seconds_count'
                         r'\{[^}]*route="/run"[^}]*\} \d+', text)
        # The in-flight gauge sees the scrape itself being served.
        assert 'repro_serve_inflight{route="/metrics"} 1' in text

    def test_access_log_written_and_flushed(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        instance = ServeServer(socket_path=tmp_path / "a.sock",
                               cache=ArtifactCache(tmp_path / "cache"),
                               access_log=log_path).start()
        try:
            handle = ServeClient(socket_path=instance.socket_path)
            assert handle.wait_ready()
            response = handle.run(source=_program("Logged"),
                                  iterations=4, route="interp")
            assert response.ok, response.text
            # Flushed per line: readable before the server stops.
            lines = [json.loads(line) for line
                     in log_path.read_text().splitlines()]
        finally:
            instance.stop()
        runs = [record for record in lines if record["route"] == "/run"]
        assert len(runs) == 1
        record = runs[0]
        assert record["type"] == "access"
        assert record["request_id"] == response.request_id
        assert record["status"] == 200
        assert record["run_route"] == "interp"
        assert record["backend"] == "laminar-c"
        assert record["duration_ms"] >= 0
        assert record["bytes_out"] > 0
        assert record["traceparent"] == response.headers["traceparent"]

    def test_run_ledger_record_carries_request_ids(self, client):
        from repro.obs import ledger as obs_ledger

        trace_id = "ef" * 16
        response = client.run(
            source=_program("LedgerId"), iterations=4, route="interp",
            traceparent=f"00-{trace_id}-{'12' * 8}-01")
        assert response.ok, response.text
        records = [record for record
                   in obs_ledger.load_records(target="CountingLedgerId")
                   if record["body"]["kind"] == "serve"]
        assert records, "no serve ledger record appended"
        body = records[-1]["body"]
        assert body["request_id"] == response.request_id
        assert body["trace_id"] == trace_id


class TestConcurrency:
    REQUESTS = 16

    @staticmethod
    def _counts(handle) -> dict:
        """Label-summed serve counters from the /metrics exposition."""
        run_seconds = 0.0
        run_interp = 0.0
        for line in handle.metrics().splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            if name.startswith("repro_serve_request_seconds_count") \
                    and 'route="/run"' in name:
                run_seconds += float(value)
            elif name.startswith("repro_serve_run_interp_total"):
                run_interp += float(value)
        return {"run_seconds_count": run_seconds,
                "run_interp": run_interp}

    def test_overlapping_requests_stay_isolated(self, tmp_path):
        import concurrent.futures

        instance = ServeServer(socket_path=tmp_path / "c.sock",
                               cache=ArtifactCache(tmp_path / "cache"),
                               max_iterations=4096).start()
        try:
            probe = ServeClient(socket_path=instance.socket_path)
            assert probe.wait_ready()
            source = _program("Storm")
            before = self._counts(probe)

            def one_run(index):
                mine = ServeClient(socket_path=instance.socket_path)
                return mine.run(source=source, iterations=8 + index,
                                route="interp")

            def one_scrape(_index):
                return ServeClient(
                    socket_path=instance.socket_path).metrics()

            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.REQUESTS + 4) as pool:
                run_futures = [pool.submit(one_run, index)
                               for index in range(self.REQUESTS)]
                scrape_futures = [pool.submit(one_scrape, index)
                                  for index in range(4)]
                responses = [future.result() for future in run_futures]
                scrapes = [future.result() for future in scrape_futures]
            assert all(response.ok for response in responses)
            # Concurrent scrapes saw complete, well-formed expositions.
            assert all(text.rstrip().endswith("# EOF")
                       for text in scrapes)
            # Every request got its own id.
            ids = {response.request_id for response in responses}
            assert len(ids) == self.REQUESTS
            # Per-request metric deltas merged without loss: the
            # label-summed aggregates advanced by exactly one per call.
            after = self._counts(probe)
            assert after["run_seconds_count"] - \
                before["run_seconds_count"] == self.REQUESTS
            assert after["run_interp"] - before["run_interp"] == \
                self.REQUESTS
            # Zero cross-request bleed: each recorded /run request has
            # exactly one root span, and every span in its tree carries
            # that request's id.
            entries = [entry for entry in probe.debug_requests()
                       if entry["record"]["request_id"] in ids]
            assert len(entries) == self.REQUESTS
            for entry in entries:
                rid = entry["record"]["request_id"]
                roots = entry["spans"]
                assert [root["name"] for root in roots] == \
                    ["serve.request"]
                for span in _flatten_spans(roots):
                    assert span["attrs"]["request_id"] == rid
        finally:
            instance.stop()
