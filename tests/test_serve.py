"""The serve daemon: round-trips over a Unix socket, errors, dedup."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cache import ArtifactCache
from repro.serve import ServeClient, ServeServer

from .conftest import TINY_PROGRAM, requires_cc

COUNTER_PROGRAM_TEMPLATE = """
void->int filter Count%(tag)s() {
  int x;
  init { x = %(start)s; }
  work push 1 {
    push(x);
    x = x + 1;
  }
}

int->void filter Drop%(tag)s() {
  work pop 1 { println(pop()); }
}

void->void pipeline Counting%(tag)s {
  add Count%(tag)s();
  add Drop%(tag)s();
}
"""


def _program(tag: str, start: int = 0) -> str:
    return COUNTER_PROGRAM_TEMPLATE % {"tag": tag, "start": start}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve")
    instance = ServeServer(socket_path=root / "d.sock",
                           cache=ArtifactCache(root / "cache"),
                           max_iterations=4096).start()
    yield instance
    instance.stop()


@pytest.fixture(scope="module")
def client(server):
    handle = ServeClient(socket_path=server.socket_path)
    assert handle.wait_ready()
    return handle


class TestPlumbing:
    def test_healthz(self, client):
        body = client.healthz().json
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0

    def test_unknown_endpoint_404(self, client):
        response = client.request("GET", "/nope")
        assert response.status == 404
        assert response.json["exit_code"] == 2

    def test_metrics_exposition(self, client):
        text = client.metrics()
        assert text.rstrip().endswith("# EOF")
        assert "repro_serve_requests_total" in text

    def test_cache_stats_endpoint(self, client, server):
        stats = client.cache_stats()
        assert stats["root"] == str(server.cache.root)
        assert "entries" in stats and "bytes" in stats

    def test_tcp_transport_too(self, tmp_path):
        instance = ServeServer(port=0,
                               cache=ArtifactCache(tmp_path)).start()
        try:
            tcp = ServeClient(host=instance.host, port=instance.port)
            assert tcp.wait_ready()
            assert tcp.healthz().json["status"] == "ok"
        finally:
            instance.stop()


class TestValidation:
    def test_body_must_be_json(self, client):
        response = client.request("POST", "/run", None)
        assert response.status == 400

    def test_source_xor_benchmark(self, client):
        response = client.run(source="x", benchmark="filterbank",
                              iterations=4)
        assert (response.status, response.json["exit_code"]) == (400, 2)
        response = client.run(iterations=4)
        assert response.status == 400

    def test_unknown_benchmark(self, client):
        response = client.run(benchmark="quicksort", iterations=4)
        assert response.status == 400
        assert "quicksort" in response.json["error"]

    def test_unknown_backend_and_route(self, client):
        assert client.run(benchmark="autocor", backend="jit",
                          iterations=4).status == 400
        assert client.run(benchmark="autocor", route="carrier-pigeon",
                          iterations=4).status == 400

    def test_bad_pipeline_rejected(self, client):
        response = client.compile(benchmark="autocor",
                                  pipeline="fold,launder")
        assert response.status == 400
        assert "launder" in response.json["error"]

    def test_bad_iterations(self, client):
        assert client.run(benchmark="autocor",
                          iterations=-1).status == 400
        assert client.run(benchmark="autocor",
                          iterations="many").status == 400

    def test_compile_error_maps_to_422(self, client):
        response = client.compile(source="void->void pipeline P { }")
        assert response.status == 422
        assert response.json["exit_code"] == 1
        assert response.json["kind"] == "compile-error"


class TestAdmission:
    def test_iterations_cap_rejected_429(self, client):
        response = client.run(benchmark="autocor", iterations=5000)
        assert response.status == 429
        body = response.json
        assert body["kind"] == "resource-exhausted"
        assert body["exit_code"] == 3

    def test_request_limits_reject_cold_compile(self, client):
        response = client.run(source=_program("Admit"), iterations=4,
                              route="interp", limits="ops=1")
        assert response.status == 429
        body = response.json
        assert body["exit_code"] == 3
        assert body["resource"] == "max_unrolled_ops"

    def test_bad_limits_spec_is_usage(self, client):
        response = client.run(benchmark="autocor", iterations=4,
                              limits="volts=9")
        assert response.status == 400


class TestInterpRoute:
    def test_run_interp(self, client):
        response = client.run(source=_program("Interp"), iterations=8,
                              route="interp")
        assert response.ok, response.text
        body = response.json
        assert body["route"] == "interp"
        assert body["outputs"] == 8
        assert len(body["checksum"]) == 16

    def test_stream_memo_hit_on_second_request(self, client):
        first = client.run(source=_program("Memo"), iterations=4,
                           route="interp").json
        second = client.run(source=_program("Memo"), iterations=4,
                            route="interp").json
        assert first["stream_cached"] is False
        assert second["stream_cached"] is True
        assert first["checksum"] == second["checksum"]


@requires_cc
class TestNativeRoute:
    def test_cold_then_hot_compile(self, client):
        source = _program("Native")
        cold = client.compile(source=source)
        assert cold.ok, cold.text
        assert cold.json["cache_hit"] is False
        hot = client.compile(source=source)
        assert hot.json["cache_hit"] is True
        assert hot.json["key"] == cold.json["key"]
        assert hot.json["components"]["backend"] == "laminar-c"

    def test_run_native_bit_exact_vs_interp(self, client):
        source = _program("Exact")
        native = client.run(source=source, iterations=16).json
        interp = client.run(source=source, iterations=16,
                            route="interp").json
        assert native["route"] == "native"
        assert native["degraded"] is False
        assert native["checksum"] == interp["checksum"]
        assert native["outputs"] == interp["outputs"]

    def test_distinct_options_distinct_keys(self, client):
        source = _program("Opts")
        default = client.compile(source=source).json
        unopt = client.compile(source=source, no_opt=True).json
        assert default["key"] != unopt["key"]

    def test_run_appends_serve_ledger_record(self, client):
        from repro.obs import ledger as obs_ledger

        response = client.run(source=_program("Ledger"),
                              iterations=8).json
        records = [record for record
                   in obs_ledger.load_records(target="CountingLedger")
                   if record["body"]["kind"] == "serve"]
        assert records, "no serve ledger record appended"
        body = records[-1]["body"]
        assert body["checksum"] == response["checksum"]
        assert body["flags"]["route"] == "native"

    def test_concurrent_compiles_build_once(self, client, server):
        source = _program("Flight")
        results = []
        barrier = threading.Barrier(4)

        def spin():
            # One connection per thread; all fire together at a cold key.
            mine = ServeClient(socket_path=server.socket_path)
            barrier.wait()
            results.append(mine.compile(source=source).json)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 4
        assert len({body["key"] for body in results}) == 1
        misses = [body for body in results if not body["cache_hit"]]
        assert len(misses) == 1, "single-flight dedup built more than once"

    def test_fifo_backend_round_trip(self, client):
        response = client.run(source=_program("Fifo"), iterations=8,
                              backend="fifo-c").json
        assert response["route"] == "native"
        assert response["backend"] == "fifo-c"


class TestCliSurface:
    def test_cache_stats_cli(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        text = capsys.readouterr().out
        assert "entries:     0" in text

    def test_cache_stats_cli_json(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "stats", "--json",
                     "--dir", str(tmp_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 0
        assert stats["root"] == str(tmp_path)

    def test_cache_gc_and_clear_cli(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "gc", "--dir", str(tmp_path),
                     "--max-bytes", "0"]) == 0
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "cache clear" in capsys.readouterr().err

    @requires_cc
    def test_serve_self_check_cli(self, tmp_path):
        from repro.cli import main

        assert main(["serve", "--socket", str(tmp_path / "s.sock"),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--self-check"]) == 0
