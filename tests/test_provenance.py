"""Tests for op-level provenance, attribution, and runtime profiling."""

import pytest

from repro import compile_source
from repro.backend.fifo_c import generate_fifo_c
from repro.backend.laminar_c import generate_laminar_c
from repro.backend.runner import compile_and_run
from repro.frontend.types import FLOAT
from repro.fuzz.generator import generate_program
from repro.lir import (BinOp, CallOp, PrintOp, Program, Provenance, Temp,
                       attribute_program, steady_share)
from repro.lir.attribution import UNATTRIBUTED
from repro.lir.ops import PROVENANCE_KINDS, PROVENANCE_PHASES
from repro.obs import export, metrics, trace
from repro.opt import OptOptions, optimize
from tests.conftest import requires_cc

SPLITJOIN_PROGRAM = """
void->float filter Src() {
  float x;
  work push 1 { push(x); x = x + 1; }
}

float->float filter Scale(float k) {
  work push 1 pop 1 { push(pop() * k); }
}

float->void filter Sink() {
  work pop 1 { println(pop()); }
}

void->void pipeline Top {
  add Src();
  add splitjoin {
    split duplicate;
    add Scale(2.0);
    add Scale(3.0);
    join roundrobin;
  };
  add Sink();
}
"""


@pytest.fixture(scope="module")
def sj_stream():
    return compile_source(SPLITJOIN_PROGRAM, "sj.str")


class TestProvenanceStamping:
    def test_every_lowered_op_is_stamped(self, sj_stream):
        program = sj_stream.lower().program
        for title, ops in program.sections():
            for op in ops:
                assert op.prov, f"unstamped op in {title}: {op}"
                primary = op.prov[0]
                assert isinstance(primary, Provenance)
                assert primary.filter
                assert primary.kind in PROVENANCE_KINDS
                assert primary.phase in PROVENANCE_PHASES

    def test_phase_matches_section(self, sj_stream):
        program = sj_stream.lower().program
        for title, ops in program.sections():
            for op in ops:
                assert op.prov[0].phase == title

    def test_program_records_tokens_firings_kinds(self, sj_stream):
        program = sj_stream.lower().program
        assert program.filter_tokens
        assert program.filter_firings
        # Every counted vertex has a kind, and at least the filters of
        # the source program appear.
        for name in program.filter_firings:
            assert program.filter_kinds[name] in PROVENANCE_KINDS
        kinds = set(program.filter_kinds.values())
        assert "filter" in kinds

    def test_hand_built_programs_carry_no_provenance(self):
        t = Temp(FLOAT)
        program = Program(name="bare")
        program.steady = [
            CallOp(result=t, name="randf", args=[], pure=False),
            PrintOp(result=None, value=t),
        ]
        for op in program.steady:
            assert op.prov == ()
        optimize(program, OptOptions(verify_analyses=True))


class TestAttribution:
    def test_op_counts_sum_to_section_totals(self, sj_stream):
        program = sj_stream.lower().program
        rows = attribute_program(program)
        assert sum(r.setup_ops for r in rows) == len(program.setup)
        assert sum(r.init_ops for r in rows) == len(program.init)
        assert sum(r.steady_ops for r in rows) == len(program.steady)

    def test_steady_share_sums_to_one(self, sj_stream):
        rows = attribute_program(sj_stream.lower().program)
        shares = steady_share(rows)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_unattributed_row_for_bare_program(self):
        t = Temp(FLOAT)
        program = Program(name="bare")
        program.steady = [
            CallOp(result=t, name="randf", args=[], pure=False),
            PrintOp(result=None, value=t),
        ]
        rows = attribute_program(program)
        assert [r.name for r in rows] == [UNATTRIBUTED]
        assert rows[0].steady_ops == 2


class TestCseProvenanceMerge:
    def test_surviving_op_records_merged_provenance(self):
        program = Program(name="merge")
        a, b = Temp(FLOAT), Temp(FLOAT)
        x, y = Temp(FLOAT), Temp(FLOAT)
        prov_a = (Provenance("A"),)
        prov_b = (Provenance("B"),)
        program.steady = [
            CallOp(result=a, name="randf", args=[], pure=False,
                   prov=prov_a),
            BinOp(result=x, op="+", lhs=a, rhs=a, prov=prov_a),
            BinOp(result=y, op="+", lhs=a, rhs=a, prov=prov_b),
            PrintOp(result=None, value=x, prov=prov_a),
            PrintOp(result=None, value=y, prov=prov_b),
        ]
        optimize(program, OptOptions(pipeline=("cse", "dce")))
        adds = [op for op in program.steady if isinstance(op, BinOp)]
        assert len(adds) == 1
        assert adds[0].prov == (Provenance("A"), Provenance("B"))
        rows = {r.name: r for r in attribute_program(program)}
        assert rows["A"].merged_from == {"B"}


class TestFuzzProvenanceProperty:
    ITERATIONS = 4

    @pytest.mark.parametrize("seed", range(25))
    def test_provenance_and_token_attribution(self, seed):
        source = generate_program(f"prov:{seed}")
        stream = compile_source(source, f"prov_{seed}.str")
        lowered = stream.lower(None, OptOptions(verify_analyses=True))
        program = lowered.program
        for title, ops in program.sections():
            for op in ops:
                assert op.prov, f"seed {seed}: unstamped op in {title}"
                assert op.prov[0].filter
                assert op.prov[0].kind in PROVENANCE_KINDS
        fifo = stream.run_fifo(self.ITERATIONS)
        expected = {name: per_iter * self.ITERATIONS
                    for name, per_iter in program.filter_tokens.items()}
        assert fifo.filter_tokens == expected, f"seed {seed}"
        laminar = stream.run_laminar(self.ITERATIONS)
        assert laminar.filter_tokens == fifo.filter_tokens, f"seed {seed}"
        assert laminar.filter_firings == fifo.filter_firings, f"seed {seed}"


class TestProfiledCodegen:
    def test_disabled_profile_is_byte_identical(self, tiny_stream):
        program = tiny_stream.lower().program
        assert generate_laminar_c(program) \
            == generate_laminar_c(program, profile=False)
        assert "REPRO_PROFILE" not in generate_laminar_c(program)
        plain_fifo = generate_fifo_c(tiny_stream.schedule,
                                     tiny_stream.source)
        assert plain_fifo == generate_fifo_c(
            tiny_stream.schedule, tiny_stream.source, profile=False)
        assert "REPRO_PROFILE" not in plain_fifo

    def test_profiled_codegen_is_instrumented(self, tiny_stream):
        program = tiny_stream.lower().program
        code = generate_laminar_c(program, profile=True)
        assert "REPRO_PROFILE" in code
        assert "repro_prof_dump" in code
        assert "repro_prof_note_iter" in code
        fifo = generate_fifo_c(tiny_stream.schedule, tiny_stream.source,
                               profile=True)
        assert "REPRO_PROFILE" in fifo

    @requires_cc
    def test_native_profile_is_bit_exact(self, tiny_stream):
        program = tiny_stream.lower().program
        plain = compile_and_run(generate_laminar_c(program), 6,
                                name="prof_plain")
        profiled = compile_and_run(
            generate_laminar_c(program, profile=True), 6,
            name="prof_instr")
        assert profiled.checksum == plain.checksum
        assert profiled.output_count == plain.output_count
        assert plain.profile is None
        assert profiled.profile is not None
        assert profiled.profile["iterations"] == 6
        assert sum(profiled.profile["hist"]) == 6
        names = {entry["name"] for entry in profiled.profile["filters"]}
        assert names  # at least one attributed filter
        for entry in profiled.profile["filters"]:
            assert entry["ns"] >= 0
            assert entry["ops"] > 0
            assert entry["calls"] > 0

    @requires_cc
    def test_native_fifo_profile_is_bit_exact(self, tiny_stream):
        plain = compile_and_run(
            generate_fifo_c(tiny_stream.schedule, tiny_stream.source), 6,
            name="fifo_plain")
        profiled = compile_and_run(
            generate_fifo_c(tiny_stream.schedule, tiny_stream.source,
                            profile=True), 6, name="fifo_instr")
        assert profiled.checksum == plain.checksum
        assert profiled.profile is not None
        assert profiled.profile["iterations"] == 6
        names = {entry["name"] for entry in profiled.profile["filters"]}
        assert {"Ramp", "Out"} <= names


class TestHistogramPercentiles:
    def test_percentiles_in_summary(self):
        hist = metrics.Histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["p50"] == pytest.approx(50, abs=2)
        assert summary["p90"] == pytest.approx(90, abs=2)
        assert summary["p99"] == pytest.approx(99, abs=2)

    def test_reservoir_is_bounded_and_deterministic(self):
        first = metrics.Histogram("a")
        second = metrics.Histogram("b")
        for value in range(10_000):
            first.observe(float(value))
            second.observe(float(value))
        assert len(first._samples) <= metrics.Histogram.MAX_SAMPLES
        assert first.summary() == second.summary()
        assert first.summary()["p50"] == pytest.approx(5000, rel=0.05)

    def test_empty_histogram_has_no_percentiles(self):
        assert "p50" not in metrics.Histogram("h").summary()


class TestChromeTraceFilterTracks:
    @pytest.fixture(autouse=True)
    def clean_tracer(self):
        trace.disable()
        trace.reset()
        yield
        trace.disable()
        trace.reset()

    def test_counter_tracks_and_thread_metadata(self):
        trace.enable()
        with trace.span("root"):
            pass
        roots = trace.get_trace()
        payload = export.to_chrome_trace(roots, metrics={
            "interp.fifo.filter.A.tokens": 6,
            "interp.fifo.filter.B.tokens": 2,
            "interp.fifo.filter.A.firings": 3,
            "interp.fifo.steady.total_ops": 99,  # not a filter family
        })
        events = payload["traceEvents"]
        meta = {e["name"] for e in events if e["ph"] == "M"}
        assert {"process_name", "thread_name", "thread_sort_index"} <= meta
        thread_names = [e["args"]["name"] for e in events
                        if e["name"] == "thread_name"]
        assert thread_names[0] == "main"
        counters = {e["name"]: e["args"] for e in events
                    if e["ph"] == "C"}
        assert counters["interp.fifo.tokens"] == {"A": 6, "B": 2}
        assert counters["interp.fifo.firings"] == {"A": 3}
        assert "interp.fifo.steady.total_ops" not in counters

    def test_without_metrics_only_spans_and_metadata(self):
        trace.enable()
        with trace.span("root"):
            pass
        events = export.to_chrome_trace(trace.get_trace())["traceEvents"]
        assert all(e["ph"] in ("X", "M") for e in events)
