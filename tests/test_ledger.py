"""Tests for the persistent run ledger (repro.obs.ledger)."""

import json
import threading

import pytest

from repro.obs import ledger


def body(kind="run", target="tiny", seconds=1.0, **kwargs):
    return ledger.make_body(kind, target, seconds=seconds, **kwargs)


class TestBody:
    def test_none_fields_dropped(self):
        record = ledger.make_body("run", "tiny")
        assert "seconds" not in record
        assert "checksum" not in record
        assert record["kind"] == "run"
        assert record["target"] == "tiny"
        assert record["flags"] == {}
        assert record["metrics"] == {}

    def test_record_id_is_content_addressed(self):
        a = body(seconds=1.5, metrics={"x": 1})
        b = body(seconds=1.5, metrics={"x": 1})
        c = body(seconds=1.6, metrics={"x": 1})
        assert ledger.record_id(a) == ledger.record_id(b)
        assert ledger.record_id(a) != ledger.record_id(c)

    def test_record_id_ignores_key_order(self):
        assert ledger.record_id({"a": 1, "b": 2}) == \
            ledger.record_id({"b": 2, "a": 1})

    def test_canonical_json_is_compact_and_sorted(self):
        assert ledger.canonical_json({"b": 1, "a": [1, 2]}) == \
            '{"a":[1,2],"b":1}'


class TestAppendLoad:
    def test_append_assigns_sequential_numbers(self, tmp_path):
        first = ledger.append(body(seconds=1.0), tmp_path)
        second = ledger.append(body(seconds=2.0), tmp_path)
        assert first["seq"] == 1
        assert second["seq"] == 2
        assert first["record_id"] != second["record_id"]

    def test_files_are_valid_json_envelopes(self, tmp_path):
        envelope = ledger.append(body(), tmp_path)
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        # Claim files are keyed by seq alone (uniqueness under O_EXCL);
        # the record id lives inside the envelope.
        assert files[0].name == f"{envelope['seq']:06d}.json"
        assert json.loads(files[0].read_text()) == envelope

    def test_load_missing_dir_raises(self, tmp_path):
        with pytest.raises(ledger.LedgerError):
            ledger.load_records(tmp_path / "nope")

    def test_load_skips_torn_records(self, tmp_path):
        ledger.append(body(), tmp_path)
        (tmp_path / "000002-0123456789ab.json").write_text('{"half')
        (tmp_path / "not-a-record.txt").write_text("noise")
        with pytest.warns(RuntimeWarning, match="unparseable"):
            records = ledger.load_records(tmp_path)
        assert len(records) == 1

    def test_load_filters_by_target(self, tmp_path):
        ledger.append(body(target="a"), tmp_path)
        ledger.append(body(target="b"), tmp_path)
        ledger.append(body(target="a", seconds=2.0), tmp_path)
        assert len(ledger.load_records(tmp_path, target="a")) == 2
        assert len(ledger.load_records(tmp_path, target="b")) == 1

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ledger.LEDGER_ENV, str(tmp_path / "custom"))
        ledger.append(body())
        assert len(ledger.load_records()) == 1
        assert (tmp_path / "custom").is_dir()


class TestResolve:
    def test_target_resolves_to_latest(self, tmp_path):
        ledger.append(body(seconds=1.0), tmp_path)
        latest = ledger.append(body(seconds=2.0), tmp_path)
        assert ledger.resolve("tiny", tmp_path) == latest

    def test_tilde_counts_back_from_latest(self, tmp_path):
        oldest = ledger.append(body(seconds=1.0), tmp_path)
        middle = ledger.append(body(seconds=2.0), tmp_path)
        latest = ledger.append(body(seconds=3.0), tmp_path)
        assert ledger.resolve("tiny~0", tmp_path) == latest
        assert ledger.resolve("tiny~1", tmp_path) == middle
        assert ledger.resolve("tiny~2", tmp_path) == oldest

    def test_tilde_past_end_raises(self, tmp_path):
        ledger.append(body(), tmp_path)
        with pytest.raises(ledger.LedgerError, match="past the ledger"):
            ledger.resolve("tiny~5", tmp_path)

    def test_record_id_prefix(self, tmp_path):
        envelope = ledger.append(body(), tmp_path)
        resolved = ledger.resolve(envelope["record_id"][:8], tmp_path)
        assert resolved == envelope

    def test_ambiguous_prefix_raises(self, tmp_path):
        # Identical bodies share a record_id; two appends then make any
        # id prefix ambiguous (the files differ only by seq).
        first = ledger.append(body(seconds=1.0), tmp_path)
        ledger.append(body(seconds=1.0), tmp_path)
        with pytest.raises(ledger.LedgerError, match="ambiguous"):
            ledger.resolve(first["record_id"][:12], tmp_path)

    def test_unknown_ref_raises(self, tmp_path):
        ledger.append(body(), tmp_path)
        with pytest.raises(ledger.LedgerError, match="no ledger record"):
            ledger.resolve("unknown-target", tmp_path)

    def test_bad_tilde_suffix_raises(self, tmp_path):
        ledger.append(body(), tmp_path)
        with pytest.raises(ledger.LedgerError, match="bad record"):
            ledger.resolve("tiny~x", tmp_path)


class TestCompare:
    def test_identical_runs_no_regression(self, tmp_path):
        a = ledger.append(body(seconds=1.0), tmp_path)
        b = ledger.append(body(seconds=1.0), tmp_path)
        result = ledger.compare(a, b)
        assert not result.regression
        assert result.metric_before == result.metric_after == 1.0

    def test_injected_2x_slowdown_is_a_regression(self, tmp_path):
        a = ledger.append(body(seconds=1.0), tmp_path)
        b = ledger.append(body(seconds=2.0), tmp_path)
        result = ledger.compare(a, b, threshold=0.25)
        assert result.regression

    def test_within_threshold_is_not_a_regression(self, tmp_path):
        a = ledger.append(body(seconds=1.0), tmp_path)
        b = ledger.append(body(seconds=1.2), tmp_path)
        assert not ledger.compare(a, b, threshold=0.25).regression
        assert ledger.compare(a, b, threshold=0.1).regression

    def test_improvement_is_never_a_regression(self, tmp_path):
        a = ledger.append(body(seconds=2.0), tmp_path)
        b = ledger.append(body(seconds=0.5), tmp_path)
        assert not ledger.compare(a, b).regression

    def test_missing_metric_is_not_a_regression(self, tmp_path):
        a = ledger.append(body(seconds=None), tmp_path)
        b = ledger.append(body(seconds=2.0), tmp_path)
        result = ledger.compare(a, b)
        assert not result.regression
        assert result.metric_before is None

    def test_metric_from_metrics_dict(self, tmp_path):
        a = ledger.append(body(metrics={"outputs": 10}), tmp_path)
        b = ledger.append(body(metrics={"outputs": 30}), tmp_path)
        result = ledger.compare(a, b, metric="outputs")
        assert result.regression
        assert result.metric_after == 30

    def test_histogram_metric_compares_means(self, tmp_path):
        a = ledger.append(body(metrics={"lat": {"mean": 1.0}}), tmp_path)
        b = ledger.append(body(metrics={"lat": {"mean": 5.0}}), tmp_path)
        assert ledger.compare(a, b, metric="lat").regression

    def test_checksum_change_flagged(self, tmp_path):
        a = ledger.append(body(checksum="aa"), tmp_path)
        b = ledger.append(body(checksum="bb", seconds=2.0), tmp_path)
        assert ledger.compare(a, b).checksum_changed

    def test_deltas_cover_shared_changed_metrics(self, tmp_path):
        a = ledger.append(body(metrics={"x": 1, "y": 2, "z": 3}), tmp_path)
        b = ledger.append(
            body(seconds=2.0, metrics={"x": 1, "y": 4, "w": 9}), tmp_path)
        deltas = {d.name: d for d in ledger.compare(a, b).deltas}
        assert set(deltas) == {"y"}
        assert deltas["y"].ratio == 2.0

    def test_to_dict_round_trips_json(self, tmp_path):
        a = ledger.append(body(seconds=1.0), tmp_path)
        b = ledger.append(body(seconds=3.0), tmp_path)
        payload = ledger.compare(a, b).to_dict()
        parsed = json.loads(json.dumps(payload))
        assert parsed["regression"] is True
        assert parsed["metric"] == "seconds"


class TestFormatting:
    def test_format_history_newest_first(self, tmp_path):
        ledger.append(body(seconds=1.0), tmp_path)
        latest = ledger.append(body(seconds=2.0), tmp_path)
        text = ledger.format_history(ledger.load_records(tmp_path))
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("~0")
        assert latest["record_id"][:12] in lines[0]
        assert lines[1].startswith("~1")

    def test_format_comparison_mentions_verdict(self, tmp_path):
        a = ledger.append(body(seconds=1.0), tmp_path)
        b = ledger.append(body(seconds=9.0), tmp_path)
        text = ledger.format_comparison(ledger.compare(a, b))
        assert "regression: YES" in text
        assert "9.00x" in text
        fine = ledger.format_comparison(ledger.compare(a, a))
        assert "regression: no" in fine


class TestConcurrentAppend:
    """Regression: concurrent appends used to share one seq number.

    ``append`` computed ``seq = _next_seq(dir)`` and then wrote
    ``<seq>-<rid>.json`` — two threads scanning before either wrote
    both minted the same seq under *different* filenames, so both
    writes "succeeded" and the ledger held duplicate sequence numbers.
    The fix claims ``<seq>.json`` with ``O_EXCL``; the loser re-scans.
    """

    def test_racing_appends_get_unique_seqs(self, tmp_path, monkeypatch):
        # Force the race deterministically: every thread agrees on the
        # same starting seq before any of them claims a file.
        workers = 8
        barrier = threading.Barrier(workers)
        original = ledger._next_seq

        def synchronized_next_seq(directory):
            seq = original(directory)
            barrier.wait()
            return seq

        monkeypatch.setattr(ledger, "_next_seq", synchronized_next_seq)
        envelopes = []
        lock = threading.Lock()

        def append_one(n):
            envelope = ledger.append(body(seconds=float(n)), tmp_path)
            with lock:
                envelopes.append(envelope)

        threads = [threading.Thread(target=append_one, args=(n,))
                   for n in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seqs = sorted(envelope["seq"] for envelope in envelopes)
        assert seqs == list(range(1, workers + 1))
        assert len(ledger.load_records(tmp_path)) == workers

    def test_race_skips_seqs_owned_by_legacy_files(self, tmp_path):
        # A pre-fix ledger dir may hold 000001-<rid>.json; new appends
        # must not mint seq 1 again even though 000001.json is free.
        legacy = {"record_id": "a" * 64, "seq": 1, "wall_time": 0.0,
                  "body": body(seconds=0.5)}
        (tmp_path / f"000001-{'a' * 12}.json").write_text(
            json.dumps(legacy))
        envelope = ledger.append(body(seconds=1.0), tmp_path)
        assert envelope["seq"] == 2
        records = ledger.load_records(tmp_path)
        assert [record["seq"] for record in records] == [1, 2]

    def test_legacy_duplicate_seqs_load_deterministically(self, tmp_path):
        # Two legacy files sharing seq 1 (the old bug's footprint):
        # load_records orders them by (seq, record_id), stably.
        for rid_char in ("b", "a"):
            envelope = {"record_id": rid_char * 64, "seq": 1,
                        "wall_time": 0.0, "body": body(seconds=1.0)}
            (tmp_path / f"000001-{rid_char * 12}.json").write_text(
                json.dumps(envelope))
        first = ledger.load_records(tmp_path)
        second = ledger.load_records(tmp_path)
        assert first == second
        assert [record["record_id"][0] for record in first] == ["a", "b"]
        # TARGET~N references stay stable across loads.
        assert ledger.resolve("tiny~1", tmp_path)["record_id"][0] == "a"
        assert ledger.resolve("tiny", tmp_path)["record_id"][0] == "b"
