"""Unit tests for the C code generators (text-level, no compiler needed)."""

import pytest

from repro import LoweringOptions, compile_source
from repro.backend.fifo_c import FifoCodegenOptions

PREAMBLE = """
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
"""


def fifo_code(body, options=None):
    return compile_source(PREAMBLE + body).fifo_c(options)


def laminar_code(body, lowering=None):
    return compile_source(PREAMBLE + body).laminar_c(lowering)


PIPE = "void->void pipeline P { add Src(); add F(); add Snk(); }"


class TestFifoCodegen:
    def test_parameter_specialization(self):
        code = fifo_code(
            "float->float filter F(float k) { work push 1 pop 1 "
            "{ push(pop() * k); } }"
            "void->void pipeline P { add Src(); add F(2.5); add F(7.0); "
            "add Snk(); }")
        assert "* 2.5" in code
        assert "* 7.0" in code
        assert "VF_work" in code and "VF_1_work" in code

    def test_field_becomes_prefixed_static(self):
        code = fifo_code(
            "float->float filter F() { float acc; work push 1 pop 1 "
            "{ acc = acc + pop(); push(acc); } }" + PIPE)
        assert "static f64 VF_acc" in code

    def test_array_field_dims(self):
        code = fifo_code(
            "float->float filter F() { float[3][4] m; work push 1 pop 1 "
            "{ push(pop() + m[1][2]); } }" + PIPE)
        assert "VF_m[3][4]" in code

    def test_local_shadowing_field(self):
        code = fifo_code(
            "float->float filter F() { float x; work push 1 pop 1 "
            "{ float x = pop(); push(x); } }" + PIPE)
        assert "l_x" in code

    def test_helper_emitted_per_instance(self):
        code = fifo_code(
            "float->float filter F() { "
            "float g(float v) { return v * 2; } "
            "work push 1 pop 1 { push(g(pop())); } }" + PIPE)
        assert "VF_g(" in code

    def test_schedule_runs_compressed(self):
        code = fifo_code(
            "float->float filter F() { work push 1 pop 4 "
            "{ push(pop()); pop(); pop(); pop(); } }" + PIPE)
        # Src fires 4x per steady iteration -> compressed into a loop
        assert "for (int i = 0; i < 4; i++)" in code

    def test_modulo_vs_mask(self):
        modulo = fifo_code(
            "float->float filter F() { work push 1 pop 1 peek 3 "
            "{ push(peek(2)); pop(); } }" + PIPE)
        mask = compile_source(
            PREAMBLE + "float->float filter F() { work push 1 pop 1 "
            "peek 3 { push(peek(2)); pop(); } }" + PIPE).fifo_c(
                FifoCodegenOptions(wraparound="mask"))
        assert "% " in modulo
        assert "& " in mask

    def test_prework_function(self):
        code = fifo_code(
            "float->float filter F() { prework push 1 { push(0); } "
            "work push 1 pop 1 { push(pop()); } }" + PIPE)
        assert "VF_prework" in code

    def test_enqueue_in_setup(self):
        code = fifo_code(
            "float->float filter Mix() { work push 2 pop 2 { "
            "float a = pop(); float b = pop(); push(a + b); "
            "push(a - b); } }"
            "float->float filter Id() { work push 1 pop 1 "
            "{ push(pop()); } }"
            "void->void pipeline P { add Src(); add feedbackloop { "
            "join roundrobin(1, 1); body Mix(); loop Id(); "
            "split roundrobin(1, 1); enqueue 0.125; }; add Snk(); }")
        assert "_push(0.125);" in code

    def test_intrinsic_spellings(self):
        code = fifo_code(
            "float->float filter F() { work push 1 pop 1 { float v = "
            "pop(); push(sin(v) + repro_placeholder(v)); } }"
            .replace(" + repro_placeholder(v)", " + abs(v) + min(v, 1.0) "
                     "+ round(v)") + PIPE)
        assert "sin((f64)" in code
        assert "fabs(" in code
        assert "repro_min_f64(" in code
        assert "repro_round(" in code

    def test_int_abs_uses_int_helper(self):
        code = compile_source(
            "void->int filter S() { work push 1 { push(randi(9)); } }"
            "int->int filter F() { work push 1 pop 1 "
            "{ push(abs(pop() - 5)); } }"
            "int->void filter P() { work pop 1 { println(pop()); } }"
            "void->void pipeline Top { add S(); add F(); add P(); }"
        ).fifo_c()
        assert "repro_abs_i32(" in code


class TestLaminarCodegen:
    def test_state_slots_are_statics(self):
        code = laminar_code(
            "float->float filter F() { float[4] h; int idx; "
            "work push 1 pop 1 { h[idx & 3] = pop(); idx = idx + 1; "
            "push(h[idx & 3]); } }" + PIPE)
        assert "static f64 F_h[4];" in code
        # idx is scalar state but dynamic-indexed array blocks only h
        assert "repro_steady" in code

    def test_carry_variables_are_statics(self):
        code = laminar_code(
            "float->float filter F() { work push 1 pop 1 peek 3 "
            "{ push(peek(0) + peek(2)); pop(); } }" + PIPE)
        assert "/* rotate loop-carried tokens */" in code
        assert code.count("static f64 t") >= 2

    def test_two_phase_rotation(self):
        code = laminar_code(
            "float->float filter F() { work push 1 pop 1 peek 2 "
            "{ push(peek(1) - peek(0)); pop(); } }" + PIPE)
        # next-values computed into n0.. before assignment
        assert "f64 n0 = " in code

    def test_no_elimination_emits_moves(self):
        base = (
            "float->float filter Id() { work push 1 pop 1 "
            "{ push(pop()); } }"
            "void->void pipeline P { add Src(); add splitjoin { "
            "split duplicate; add Id(); add Id(); "
            "join roundrobin(1, 1); }; add Snk(); }")
        kept = laminar_code(base,
                            LoweringOptions(eliminate_splitjoin=False))
        eliminated = laminar_code(base)
        assert len(kept) > len(eliminated)

    def test_int_min_literal(self):
        from repro.backend.laminar_c import generate_laminar_c
        from repro.lir import (BinOp, PrintOp, Program, Temp, const_int)
        from repro.frontend.types import INT
        program = Program(name="edge")
        t = Temp(INT)
        program.steady = [
            BinOp(result=t, op="+", lhs=const_int(-2147483648),
                  rhs=const_int(0)),
            PrintOp(result=None, value=t),
        ]
        code = generate_laminar_c(program)
        assert "(-2147483647 - 1)" in code

    def test_boolean_prints_as_int(self):
        code = compile_source(
            "void->int filter S() { work push 1 { push(randi(2)); } }"
            "int->void filter P() { work pop 1 "
            "{ println(pop()); } }"
            "void->void pipeline Top { add S(); add P(); }").laminar_c()
        assert "repro_print_i32(" in code

    def test_setup_init_steady_present(self, demo_stream):
        code = demo_stream.laminar_c()
        for section in ("repro_setup", "repro_init_schedule",
                        "repro_steady"):
            assert f"static void {section}(void)" in code
