"""Tests for the observability subsystem (repro.obs)."""

import json
import threading
import urllib.request

import pytest

from repro import compile_source
from repro.obs import bus, export, metrics, reqctx, sinks, trace
from tests.conftest import TINY_PROGRAM


@pytest.fixture(autouse=True)
def clean_tracer():
    trace.disable()
    trace.reset()
    yield
    trace.disable()
    trace.reset()


class TestTracerDisabled:
    def test_span_returns_shared_null_singleton(self):
        assert trace.span("a") is trace.span("b")

    def test_null_span_is_inert(self):
        with trace.span("a") as span:
            span.annotate(x=1)
        assert span.attrs == {}
        assert trace.get_trace() == []

    def test_current_span_is_null(self):
        assert trace.current_span() is trace.span("whatever")


class TestTracerEnabled:
    def test_nesting_builds_a_tree(self):
        trace.enable()
        with trace.span("compile", file="x.str"):
            with trace.span("parse"):
                pass
            with trace.span("flatten"):
                pass
        roots = trace.get_trace()
        assert [root.name for root in roots] == ["compile"]
        assert [child.name for child in roots[0].children] == \
            ["parse", "flatten"]
        assert roots[0].attrs == {"file": "x.str"}

    def test_durations_recorded(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        outer = trace.get_trace()[0]
        assert outer.duration is not None and outer.duration >= 0.0
        assert outer.children[0].duration is not None
        assert outer.duration >= outer.children[0].duration

    def test_annotate(self):
        trace.enable()
        with trace.span("s", a=1) as span:
            span.annotate(b=2)
        assert trace.get_trace()[0].attrs == {"a": 1, "b": 2}

    def test_exception_still_closes_span(self):
        trace.enable()
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("x")
        span = trace.get_trace()[0]
        assert span.duration is not None

    def test_current_span(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                assert trace.current_span().name == "inner"
            assert trace.current_span().name == "outer"

    def test_enable_reset_clears_previous_trace(self):
        trace.enable()
        with trace.span("old"):
            pass
        trace.enable(reset=True)
        assert trace.get_trace() == []

    def test_traced_decorator(self):
        trace.enable()

        @trace.traced("labelled", kind="test")
        def work():
            return 42

        @trace.traced
        def bare():
            return 7

        assert work() == 42
        assert bare() == 7
        names = [span.name for span in trace.get_trace()]
        assert "labelled" in names
        assert any("bare" in name for name in names)

    def test_traced_decorator_noop_when_disabled(self):
        @trace.traced
        def work():
            return 1

        assert work() == 1
        assert trace.get_trace() == []

    def test_tracing_context_restores_disabled_state(self):
        assert not trace.is_enabled()
        with trace.tracing():
            assert trace.is_enabled()
            with trace.span("inside"):
                pass
        assert not trace.is_enabled()
        # Spans collected under tracing() stay readable afterwards.
        assert [span.name for span in trace.get_trace()] == ["inside"]

    def test_threads_get_their_own_roots(self):
        trace.enable()

        def worker(index):
            with trace.span(f"thread-span-{index}"):
                with trace.span("child"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        with trace.span("main-span"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        names = {span.name for span in trace.get_trace()}
        assert "main-span" in names
        assert {f"thread-span-{i}" for i in range(4)} <= names
        for root in trace.get_trace():
            if root.name.startswith("thread-span-"):
                assert [c.name for c in root.children] == ["child"]


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = metrics.MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        snapshot = registry.as_dict()
        assert snapshot["c"] == 5
        assert snapshot["g"] == 2.5
        assert snapshot["h"]["count"] == 2
        assert snapshot["h"]["mean"] == 2.0
        assert snapshot["h"]["min"] == 1.0
        assert snapshot["h"]["max"] == 3.0

    def test_as_dict_is_sorted(self):
        registry = metrics.MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        assert list(registry.as_dict()) == ["a", "z"]

    def test_type_conflict_raises(self):
        registry = metrics.MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_disabled_returns_shared_null_instrument(self):
        assert metrics.counter("a") is metrics.gauge("b")
        metrics.counter("a").inc()
        metrics.gauge("b").set(1)
        assert metrics.registry().as_dict() == {}

    def test_enabled_records_into_global_registry(self):
        trace.enable()
        metrics.counter("hits").inc(3)
        assert metrics.registry().as_dict()["hits"] == 3

    def test_publish_counters(self):
        trace.enable()
        from repro.interp.counters import Counters
        counters = Counters(loads=2, stores=3, alu=1)
        metrics.publish_counters("test.prefix", counters)
        snapshot = metrics.registry().as_dict()
        assert snapshot["test.prefix.loads"] == 2
        assert snapshot["test.prefix.memory_accesses"] == 5
        assert snapshot["test.prefix.total_ops"] == 6


def _traced_pipeline():
    """Compile + run the tiny program with tracing on; returns roots."""
    with trace.tracing():
        stream = compile_source(TINY_PROGRAM, "tiny.str")
        stream.run_fifo(2)
        stream.run_laminar(2)
        roots = trace.get_trace()
        snapshot = metrics.registry().as_dict()
    return roots, snapshot


def _names(roots):
    out = []

    def walk(span):
        out.append(span.name)
        for child in span.children:
            walk(child)

    for root in roots:
        walk(root)
    return out


class TestPipelineIntegration:
    def test_spans_cover_every_stage(self):
        roots, _ = _traced_pipeline()
        names = _names(roots)
        for stage in ("compile", "parse", "elaborate", "flatten",
                      "schedule", "schedule.repetition_vector", "lower",
                      "lower.lir", "optimize", "verify", "run.fifo",
                      "run.laminar"):
            assert stage in names, f"missing span {stage}"

    def test_per_pass_optimizer_spans_and_metrics(self):
        roots, snapshot = _traced_pipeline()
        names = _names(roots)
        assert "opt.dead_code_elimination" in names
        assert "opt.constant_folding" in names
        assert "opt.dead_code_elimination.ops" in snapshot
        assert snapshot["opt.fixpoint_rounds"] >= 1

    def test_scheduler_and_interp_metrics_published(self):
        _, snapshot = _traced_pipeline()
        assert snapshot["schedule.steady_firings"] >= 1
        assert snapshot["interp.fifo.steady.total_ops"] > 0
        assert snapshot["interp.laminar.steady.total_ops"] > 0
        # The paper's headline effect, straight from the registry:
        assert snapshot["interp.laminar.steady.memory_accesses"] <= \
            snapshot["interp.fifo.steady.memory_accesses"]


class TestExporters:
    def test_format_tree_contains_spans_and_metrics(self):
        roots, snapshot = _traced_pipeline()
        text = export.format_tree(roots, snapshot, title="test run")
        assert "test run" in text
        assert "compile" in text
        assert "optimize" in text
        assert "metrics:" in text
        assert "schedule.steady_firings" in text

    def test_format_tree_empty(self):
        assert "no spans" in export.format_tree([])

    def test_to_json_round_trips(self):
        roots, snapshot = _traced_pipeline()
        payload = export.to_json(roots, snapshot)
        text = json.dumps(payload)
        parsed = json.loads(text)
        assert parsed["spans"]
        top_names = [span["name"] for span in parsed["spans"]]
        assert "compile" in top_names
        compile_span = parsed["spans"][top_names.index("compile")]
        assert compile_span["duration_s"] >= 0.0
        children = [c["name"] for c in compile_span["children"]]
        assert "parse" in children
        assert parsed["metrics"]["schedule.steady_firings"] >= 1

    def test_chrome_trace_is_structurally_valid(self):
        roots, _ = _traced_pipeline()
        payload = export.to_chrome_trace(roots)
        # Round-trips through JSON without error.
        parsed = json.loads(json.dumps(payload))
        events = parsed["traceEvents"]
        assert events
        assert parsed["displayTimeUnit"] == "ms"
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for event in events:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["cat"] == "repro"
                assert isinstance(event["ts"], (int, float))
                assert isinstance(event["dur"], (int, float))
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
                assert isinstance(event["args"], dict)
        # Timestamps are normalized: something starts at (about) zero.
        assert min(e["ts"] for e in complete) < 1.0

    def test_chrome_trace_child_nested_within_parent(self):
        roots, _ = _traced_pipeline()
        events = export.to_chrome_trace(roots)["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        parent, child = by_name["compile"], by_name["parse"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= \
            parent["ts"] + parent["dur"] + 1.0  # float slack in us

    def test_write_chrome_trace(self, tmp_path):
        roots, _ = _traced_pipeline()
        path = export.write_chrome_trace(roots, tmp_path / "trace.json")
        parsed = json.loads(path.read_text())
        assert parsed["traceEvents"]


class TestHistogramPercentiles:
    """Exact nearest-rank percentiles while n < the reservoir size."""

    @staticmethod
    def filled(values):
        hist = metrics.Histogram("h")
        for value in values:
            hist.observe(value)
        return hist

    def test_1_to_100_pins(self):
        hist = self.filled(range(1, 101))
        assert hist.percentile(50) == 50
        assert hist.percentile(90) == 90
        assert hist.percentile(99) == 99
        assert hist.percentile(100) == 100

    def test_1_to_10_pins(self):
        hist = self.filled(range(1, 11))
        assert hist.percentile(50) == 5
        assert hist.percentile(90) == 9
        # p99 of 10 samples is the max, not an interpolated artifact.
        assert hist.percentile(99) == 10

    def test_order_does_not_matter(self):
        shuffled = [7, 1, 9, 3, 10, 4, 8, 2, 6, 5]
        hist = self.filled(shuffled)
        assert hist.percentile(50) == 5
        assert hist.percentile(99) == 10

    def test_single_sample(self):
        hist = self.filled([42.0])
        for q in (0, 50, 99, 100):
            assert hist.percentile(q) == 42.0

    def test_empty_histogram(self):
        assert metrics.Histogram("h").percentile(50) == 0.0

    def test_summary_includes_percentiles(self):
        summary = self.filled(range(1, 11)).summary()
        assert summary["p50"] == 5
        assert summary["p90"] == 9
        assert summary["p99"] == 10

    def test_decimation_stays_deterministic(self):
        n = metrics.Histogram.MAX_SAMPLES * 4
        a = self.filled(range(n))
        b = self.filled(range(n))
        assert a.percentile(50) == b.percentile(50)
        assert a.count == n
        # Decimated estimates stay within one stride of the true value.
        assert abs(a.percentile(50) - n / 2) <= a._stride * 2


class _ListSink(bus.TelemetrySink):
    def __init__(self):
        self.events, self.spans, self.snapshots = [], [], []
        self.flushes = 0

    def on_event(self, event):
        self.events.append(event)

    def on_span(self, span):
        self.spans.append(span)

    def on_metrics(self, snapshot):
        self.snapshots.append(snapshot)

    def flush(self):
        self.flushes += 1


class TestTelemetryBus:
    def setup_method(self):
        self.bus = bus.TelemetryBus()

    def test_events_buffered_without_sinks_or_tracing(self):
        assert not trace.is_enabled()
        event = self.bus.emit("native.stall", binary="prog", beats=2)
        assert event.wall_time > 0
        assert event.monotonic_ns > 0
        recent = self.bus.recent_events()
        assert [e.name for e in recent] == ["native.stall"]
        assert recent[0].attrs == {"binary": "prog", "beats": 2}

    def test_buffer_is_bounded(self):
        for index in range(bus.EVENT_BUFFER + 50):
            self.bus.emit("e", index=index)
        recent = self.bus.recent_events()
        assert len(recent) == bus.EVENT_BUFFER
        assert recent[0].attrs["index"] == 50  # oldest evicted first

    def test_filter_by_name(self):
        self.bus.emit("a")
        self.bus.emit("b")
        self.bus.emit("a")
        assert len(self.bus.recent_events("a")) == 2
        self.bus.reset_events()
        assert self.bus.recent_events() == []

    def test_events_fan_out_to_sinks(self):
        sink = self.bus.add_sink(_ListSink())
        self.bus.emit("compile.done", filters=3)
        assert [e.name for e in sink.events] == ["compile.done"]

    def test_flush_pushes_metrics_snapshot(self):
        sink = self.bus.add_sink(_ListSink())
        self.bus.flush({"x": 1})
        assert sink.snapshots == [{"x": 1}]
        assert sink.flushes == 1
        self.bus.flush()  # no snapshot -> flush only
        assert sink.snapshots == [{"x": 1}]
        assert sink.flushes == 2

    def test_span_hook_installed_only_while_sinks_attached(self):
        sink = _ListSink()
        self.bus.add_sink(sink)
        trace.enable()
        # The global bus owns the real hook; drive this bus's hook
        # directly through a span close.
        trace.set_span_hook(self.bus._span_closed)
        with trace.span("watched"):
            pass
        assert [s.name for s in sink.spans] == ["watched"]
        self.bus.remove_sink(sink)
        assert self.bus.sinks() == []

    def test_event_to_dict_coerces_exotic_attrs(self):
        event = self.bus.emit("e", path=object(), ok=True, n=1)
        payload = event.to_dict()
        assert isinstance(payload["attrs"]["path"], str)
        assert payload["attrs"]["ok"] is True
        json.dumps(payload)  # fully serializable

    def test_global_bus_helpers(self):
        bus.get_bus().reset_events()
        bus.emit_event("global.check", k="v")
        events = bus.get_bus().recent_events("global.check")
        assert events and events[-1].attrs == {"k": "v"}
        bus.get_bus().reset_events()


class TestJsonlEventSink:
    def test_writes_events_spans_and_metrics(self, tmp_path):
        path = tmp_path / "log" / "events.jsonl"
        local = bus.TelemetryBus()
        sink = local.add_sink(sinks.JsonlEventSink(path))
        local.emit("native.stall", binary="prog")
        trace.enable()
        with trace.span("spanned", file="x.str") as span:
            pass
        sink.on_span(span)
        local.flush({"hits": 3})
        local.remove_sink(sink)  # clears the global span hook
        sink.close()
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        by_type = {}
        for line in lines:
            by_type.setdefault(line["type"], []).append(line)
        assert [e["name"] for e in by_type["event"]] == ["native.stall"]
        assert by_type["event"][0]["attrs"] == {"binary": "prog"}
        span_line = by_type["span"][0]
        assert span_line["name"] == "spanned"
        assert span_line["duration_ns"] >= 0
        assert span_line["attrs"] == {"file": "x.str"}
        assert by_type["metrics"][0]["metrics"] == {"hits": 3}

    def test_append_only_across_reopen(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for round_no in range(2):
            sink = sinks.JsonlEventSink(path)
            sink.on_event(bus.Event(name=f"round{round_no}"))
            sink.close()
        names = [json.loads(line)["name"]
                 for line in path.read_text().splitlines()]
        assert names == ["round0", "round1"]

    def test_chrome_trace_sink(self, tmp_path):
        trace.enable()
        with trace.span("traced"):
            pass
        sink = sinks.ChromeTraceSink(tmp_path / "trace.json")
        sink.on_metrics({"m": 1})
        sink.close()
        parsed = json.loads((tmp_path / "trace.json").read_text())
        assert any(e["name"] == "traced" for e in parsed["traceEvents"])


class TestOpenMetrics:
    def filled_registry(self):
        registry = metrics.MetricsRegistry()
        registry.counter("native.fallback").inc(2)
        registry.gauge("native.heartbeat.iterations").set(7)
        hist = registry.histogram("opt.pass_ns")
        for value in range(1, 11):
            hist.observe(float(value))
        return registry

    def test_exposition_shape(self):
        text = sinks.to_openmetrics(self.filled_registry())
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_native_fallback counter" in text
        assert "repro_native_fallback_total 2" in text
        assert "# TYPE repro_native_heartbeat_iterations gauge" in text
        assert "repro_native_heartbeat_iterations 7" in text
        assert "# TYPE repro_opt_pass_ns summary" in text
        assert 'repro_opt_pass_ns{quantile="0.5"} 5.0' in text
        assert 'repro_opt_pass_ns{quantile="0.99"} 10.0' in text
        assert "repro_opt_pass_ns_count 10" in text
        assert "repro_opt_pass_ns_sum 55.0" in text

    def test_names_are_sanitized(self):
        registry = metrics.MetricsRegistry()
        registry.counter("weird.name-with/chars").inc()
        text = sinks.to_openmetrics(registry)
        assert "repro_weird_name_with_chars_total 1" in text

    def test_empty_registry_is_still_valid(self):
        text = sinks.to_openmetrics(metrics.MetricsRegistry())
        assert text == "# EOF\n"

    def test_sink_writes_at_flush(self, tmp_path):
        trace.enable()
        metrics.registry().reset()
        metrics.counter("hits").inc()
        sink = sinks.OpenMetricsSink(tmp_path / "metrics.prom")
        sink.flush()
        text = (tmp_path / "metrics.prom").read_text()
        assert "repro_hits_total 1" in text
        assert text.endswith("# EOF\n")

    def test_metrics_server_scrape(self):
        trace.enable()
        metrics.registry().reset()
        metrics.gauge("obs.up").set(1)
        server = sinks.serve_metrics(port=0)
        try:
            assert server.port != 0
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == \
                    sinks.OPENMETRICS_CONTENT_TYPE
                body = resp.read().decode("utf-8")
            assert "repro_obs_up 1" in body
            assert body.endswith("# EOF\n")
            health = server.url.replace("/metrics", "/healthz")
            with urllib.request.urlopen(health, timeout=5) as resp:
                assert resp.read() == b"ok\n"
            missing = server.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(missing, timeout=5)
        finally:
            server.stop()


class TestLabeledMetrics:
    def test_distinct_label_sets_are_distinct_instruments(self):
        registry = metrics.MetricsRegistry()
        run = registry.counter("serve.requests", route="/run")
        scrape = registry.counter("serve.requests", route="/metrics")
        bare = registry.counter("serve.requests")
        run.inc(2)
        scrape.inc(3)
        bare.inc(5)
        assert run is not scrape and run is not bare
        assert registry.counter("serve.requests", route="/run").value == 2
        assert registry.counter("serve.requests").value == 5

    def test_label_order_is_canonical(self):
        registry = metrics.MetricsRegistry()
        assert registry.gauge("g", a="1", b="2") \
            is registry.gauge("g", b="2", a="1")

    def test_family_type_is_enforced_across_label_sets(self):
        registry = metrics.MetricsRegistry()
        registry.counter("mixed", route="/run")
        with pytest.raises(TypeError):
            registry.gauge("mixed", route="/metrics")
        with pytest.raises(TypeError):
            registry.histogram("mixed")

    def test_as_dict_uses_display_names(self):
        registry = metrics.MetricsRegistry()
        registry.counter("hits", status="200", route="/run").inc(4)
        assert registry.as_dict() == \
            {'hits{route="/run",status="200"}': 4}
        assert registry.names() == ['hits{route="/run",status="200"}']

    def test_gauge_add(self):
        gauge = metrics.Gauge("g")
        gauge.set(3)
        gauge.add(2)
        gauge.add(-1)
        assert gauge.value == 4

    def test_histogram_merge_is_exact_on_moments(self):
        left = metrics.Histogram("h")
        right = metrics.Histogram("h")
        for value in (1.0, 2.0, 3.0):
            left.observe(value)
        for value in (10.0, 0.5):
            right.observe(value)
        left.merge(right)
        assert left.count == 5
        assert left.total == 16.5
        assert left.min == 0.5
        assert left.max == 10.0
        assert left.percentile(99) == 10.0

    def test_merge_into_semantics(self):
        source = metrics.MetricsRegistry()
        target = metrics.MetricsRegistry()
        target.counter("c", route="/run").inc(10)
        target.gauge("g").set(1)
        target.histogram("h").observe(1.0)
        source.counter("c", route="/run").inc(2)
        source.counter("untouched")  # zero: must not land in target
        source.gauge("g").set(7)
        source.histogram("h").observe(3.0)
        source.merge_into(target)
        assert target.counter("c", route="/run").value == 12
        assert target.gauge("g").value == 7
        assert target.histogram("h").count == 2
        assert target.histogram("h").total == 4.0
        assert "untouched" not in target.names()

    def test_helpers_route_to_active_context(self):
        trace.enable()
        ctx = reqctx.RequestContext()
        metrics.counter("ambient.hits").inc()
        with reqctx.activate(ctx):
            metrics.counter("ctx.hits").inc(3)
            metrics.gauge("ctx.depth").set(2)
        assert "ctx.hits" not in metrics.registry().names()
        assert ctx.registry.counter("ctx.hits").value == 3
        assert ctx.registry.gauge("ctx.depth").value == 2
        assert metrics.registry().counter("ambient.hits").value == 1
        assert "ambient.hits" not in ctx.registry.names()


class TestTraceparent:
    def test_parse_valid_header(self):
        header = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        assert reqctx.parse_traceparent(header) == \
            ("ab" * 16, "cd" * 8, "01")

    @pytest.mark.parametrize("bad", [
        None,
        42,
        "",
        "banana",
        "00-" + "AB" * 16 + "-" + "cd" * 8 + "-01",   # uppercase hex
        "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",   # reserved version
        "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",    # all-zero trace id
        "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",   # all-zero parent
        "00-" + "ab" * 16 + "-01",                    # missing segment
        "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01-extra",
    ])
    def test_parse_rejects_garbage(self, bad):
        assert reqctx.parse_traceparent(bad) is None

    def test_make_round_trips(self):
        parsed = reqctx.parse_traceparent(reqctx.make_traceparent())
        assert parsed is not None
        trace_id, span_id, flags = parsed
        assert len(trace_id) == 32 and len(span_id) == 16
        assert flags == "01"

    def test_make_honours_given_ids(self):
        header = reqctx.make_traceparent("ab" * 16, "cd" * 8)
        assert header == "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"


class TestRequestContext:
    def test_continues_an_incoming_trace(self):
        header = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        ctx = reqctx.RequestContext(traceparent=header)
        assert ctx.trace_id == "ab" * 16
        assert ctx.parent_id == "cd" * 8
        assert ctx.traceparent_in == header
        # The outgoing header continues the trace with the request id
        # as the new parent.
        assert reqctx.parse_traceparent(ctx.traceparent) == \
            (ctx.trace_id, ctx.request_id, "01")

    def test_mints_fresh_ids_on_invalid_header(self):
        ctx = reqctx.RequestContext(traceparent="not-a-traceparent")
        assert ctx.traceparent_in is None
        assert ctx.parent_id is None
        assert len(ctx.trace_id) == 32
        assert reqctx.parse_traceparent(ctx.traceparent) is not None

    def test_spans_route_to_context_and_carry_stamp(self):
        trace.enable()
        ctx = reqctx.RequestContext()
        with reqctx.activate(ctx):
            with trace.span("inside", extra=1):
                pass
        with trace.span("outside"):
            pass
        assert [span.name for span in ctx.tracer.roots] == ["inside"]
        inside = ctx.tracer.roots[0]
        assert inside.attrs["request_id"] == ctx.request_id
        assert inside.attrs["trace_id"] == ctx.trace_id
        assert inside.attrs["extra"] == 1
        # The ambient tracer saw only the span opened outside.
        assert [span.name for span in trace.get_trace()] == ["outside"]
        assert "request_id" not in trace.get_trace()[0].attrs

    def test_bus_events_stamped_and_collected(self):
        ctx = reqctx.RequestContext()
        with reqctx.activate(ctx):
            bus.emit_event("ctx.fact", foo=1)
        assert len(ctx.events) == 1
        event = ctx.events[0]
        assert event.attrs == {"foo": 1,
                               "request_id": ctx.request_id,
                               "trace_id": ctx.trace_id}
        # Still visible on the global ring too.
        assert bus.get_bus().recent_events("ctx.fact")

    def test_events_outside_context_are_unstamped(self):
        event = bus.emit_event("ambient.fact")
        assert "request_id" not in event.attrs

    def test_note_updates_active_context_only(self):
        ctx = reqctx.RequestContext()
        reqctx.note(orphan=True)  # no active context: a no-op
        with reqctx.activate(ctx):
            reqctx.note(backend="laminar-c")
            reqctx.note(cache_hit=True)
        assert ctx.info == {"backend": "laminar-c", "cache_hit": True}
        assert reqctx.current() is None

    def test_activation_nests_and_restores(self):
        outer = reqctx.RequestContext()
        inner = reqctx.RequestContext()
        with reqctx.activate(outer):
            assert reqctx.current() is outer
            with reqctx.activate(inner):
                assert reqctx.current() is inner
            assert reqctx.current() is outer
        assert reqctx.current() is None


class TestOpenMetricsLabels:
    def test_label_pairs_rendered_sorted(self):
        registry = metrics.MetricsRegistry()
        registry.counter("serve.requests", status="200",
                         route="/run").inc(7)
        text = sinks.to_openmetrics(registry)
        assert ('repro_serve_requests_total'
                '{route="/run",status="200"} 7') in text

    def test_label_values_escaped(self):
        registry = metrics.MetricsRegistry()
        registry.gauge("weird", path='a\\b"c\nd').set(1)
        text = sinks.to_openmetrics(registry)
        assert 'path="a\\\\b\\"c\\nd"' in text

    def test_help_text_escaped(self):
        registry = metrics.MetricsRegistry()
        registry.counter("odd\nname").inc()
        text = sinks.to_openmetrics(registry)
        assert "# HELP repro_odd_name odd\\nname" in text
        assert "\nodd" not in text  # the newline never leaks raw

    def test_unit_lines_for_seconds_and_bytes(self):
        registry = metrics.MetricsRegistry()
        registry.histogram("serve.request.seconds",
                           route="/run").observe(0.25)
        registry.gauge("cache.bytes").set(1024)
        registry.counter("plain").inc()
        text = sinks.to_openmetrics(registry)
        assert "# UNIT repro_serve_request_seconds seconds" in text
        assert "# UNIT repro_cache_bytes bytes" in text
        assert "# UNIT repro_plain" not in text

    def test_one_metadata_block_per_labeled_family(self):
        registry = metrics.MetricsRegistry()
        registry.counter("hits", route="/a").inc()
        registry.counter("hits", route="/b").inc(2)
        text = sinks.to_openmetrics(registry)
        assert text.count("# TYPE repro_hits counter") == 1
        assert 'repro_hits_total{route="/a"} 1' in text
        assert 'repro_hits_total{route="/b"} 2' in text

    def test_histogram_quantile_merges_with_labels(self):
        registry = metrics.MetricsRegistry()
        hist = registry.histogram("lat.seconds", route="/run")
        for value in range(1, 11):
            hist.observe(float(value))
        text = sinks.to_openmetrics(registry)
        assert 'repro_lat_seconds{route="/run",quantile="0.5"} 5.0' in text
        assert 'repro_lat_seconds_count{route="/run"} 10' in text
        assert 'repro_lat_seconds_sum{route="/run"} 55.0' in text
