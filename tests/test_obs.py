"""Tests for the observability subsystem (repro.obs)."""

import json
import threading

import pytest

from repro import compile_source
from repro.obs import export, metrics, trace
from tests.conftest import TINY_PROGRAM


@pytest.fixture(autouse=True)
def clean_tracer():
    trace.disable()
    trace.reset()
    yield
    trace.disable()
    trace.reset()


class TestTracerDisabled:
    def test_span_returns_shared_null_singleton(self):
        assert trace.span("a") is trace.span("b")

    def test_null_span_is_inert(self):
        with trace.span("a") as span:
            span.annotate(x=1)
        assert span.attrs == {}
        assert trace.get_trace() == []

    def test_current_span_is_null(self):
        assert trace.current_span() is trace.span("whatever")


class TestTracerEnabled:
    def test_nesting_builds_a_tree(self):
        trace.enable()
        with trace.span("compile", file="x.str"):
            with trace.span("parse"):
                pass
            with trace.span("flatten"):
                pass
        roots = trace.get_trace()
        assert [root.name for root in roots] == ["compile"]
        assert [child.name for child in roots[0].children] == \
            ["parse", "flatten"]
        assert roots[0].attrs == {"file": "x.str"}

    def test_durations_recorded(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        outer = trace.get_trace()[0]
        assert outer.duration is not None and outer.duration >= 0.0
        assert outer.children[0].duration is not None
        assert outer.duration >= outer.children[0].duration

    def test_annotate(self):
        trace.enable()
        with trace.span("s", a=1) as span:
            span.annotate(b=2)
        assert trace.get_trace()[0].attrs == {"a": 1, "b": 2}

    def test_exception_still_closes_span(self):
        trace.enable()
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("x")
        span = trace.get_trace()[0]
        assert span.duration is not None

    def test_current_span(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                assert trace.current_span().name == "inner"
            assert trace.current_span().name == "outer"

    def test_enable_reset_clears_previous_trace(self):
        trace.enable()
        with trace.span("old"):
            pass
        trace.enable(reset=True)
        assert trace.get_trace() == []

    def test_traced_decorator(self):
        trace.enable()

        @trace.traced("labelled", kind="test")
        def work():
            return 42

        @trace.traced
        def bare():
            return 7

        assert work() == 42
        assert bare() == 7
        names = [span.name for span in trace.get_trace()]
        assert "labelled" in names
        assert any("bare" in name for name in names)

    def test_traced_decorator_noop_when_disabled(self):
        @trace.traced
        def work():
            return 1

        assert work() == 1
        assert trace.get_trace() == []

    def test_tracing_context_restores_disabled_state(self):
        assert not trace.is_enabled()
        with trace.tracing():
            assert trace.is_enabled()
            with trace.span("inside"):
                pass
        assert not trace.is_enabled()
        # Spans collected under tracing() stay readable afterwards.
        assert [span.name for span in trace.get_trace()] == ["inside"]

    def test_threads_get_their_own_roots(self):
        trace.enable()

        def worker(index):
            with trace.span(f"thread-span-{index}"):
                with trace.span("child"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        with trace.span("main-span"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        names = {span.name for span in trace.get_trace()}
        assert "main-span" in names
        assert {f"thread-span-{i}" for i in range(4)} <= names
        for root in trace.get_trace():
            if root.name.startswith("thread-span-"):
                assert [c.name for c in root.children] == ["child"]


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = metrics.MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        snapshot = registry.as_dict()
        assert snapshot["c"] == 5
        assert snapshot["g"] == 2.5
        assert snapshot["h"]["count"] == 2
        assert snapshot["h"]["mean"] == 2.0
        assert snapshot["h"]["min"] == 1.0
        assert snapshot["h"]["max"] == 3.0

    def test_as_dict_is_sorted(self):
        registry = metrics.MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        assert list(registry.as_dict()) == ["a", "z"]

    def test_type_conflict_raises(self):
        registry = metrics.MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_disabled_returns_shared_null_instrument(self):
        assert metrics.counter("a") is metrics.gauge("b")
        metrics.counter("a").inc()
        metrics.gauge("b").set(1)
        assert metrics.registry().as_dict() == {}

    def test_enabled_records_into_global_registry(self):
        trace.enable()
        metrics.counter("hits").inc(3)
        assert metrics.registry().as_dict()["hits"] == 3

    def test_publish_counters(self):
        trace.enable()
        from repro.interp.counters import Counters
        counters = Counters(loads=2, stores=3, alu=1)
        metrics.publish_counters("test.prefix", counters)
        snapshot = metrics.registry().as_dict()
        assert snapshot["test.prefix.loads"] == 2
        assert snapshot["test.prefix.memory_accesses"] == 5
        assert snapshot["test.prefix.total_ops"] == 6


def _traced_pipeline():
    """Compile + run the tiny program with tracing on; returns roots."""
    with trace.tracing():
        stream = compile_source(TINY_PROGRAM, "tiny.str")
        stream.run_fifo(2)
        stream.run_laminar(2)
        roots = trace.get_trace()
        snapshot = metrics.registry().as_dict()
    return roots, snapshot


def _names(roots):
    out = []

    def walk(span):
        out.append(span.name)
        for child in span.children:
            walk(child)

    for root in roots:
        walk(root)
    return out


class TestPipelineIntegration:
    def test_spans_cover_every_stage(self):
        roots, _ = _traced_pipeline()
        names = _names(roots)
        for stage in ("compile", "parse", "elaborate", "flatten",
                      "schedule", "schedule.repetition_vector", "lower",
                      "lower.lir", "optimize", "verify", "run.fifo",
                      "run.laminar"):
            assert stage in names, f"missing span {stage}"

    def test_per_pass_optimizer_spans_and_metrics(self):
        roots, snapshot = _traced_pipeline()
        names = _names(roots)
        assert "opt.dead_code_elimination" in names
        assert "opt.constant_folding" in names
        assert "opt.dead_code_elimination.ops" in snapshot
        assert snapshot["opt.fixpoint_rounds"] >= 1

    def test_scheduler_and_interp_metrics_published(self):
        _, snapshot = _traced_pipeline()
        assert snapshot["schedule.steady_firings"] >= 1
        assert snapshot["interp.fifo.steady.total_ops"] > 0
        assert snapshot["interp.laminar.steady.total_ops"] > 0
        # The paper's headline effect, straight from the registry:
        assert snapshot["interp.laminar.steady.memory_accesses"] <= \
            snapshot["interp.fifo.steady.memory_accesses"]


class TestExporters:
    def test_format_tree_contains_spans_and_metrics(self):
        roots, snapshot = _traced_pipeline()
        text = export.format_tree(roots, snapshot, title="test run")
        assert "test run" in text
        assert "compile" in text
        assert "optimize" in text
        assert "metrics:" in text
        assert "schedule.steady_firings" in text

    def test_format_tree_empty(self):
        assert "no spans" in export.format_tree([])

    def test_to_json_round_trips(self):
        roots, snapshot = _traced_pipeline()
        payload = export.to_json(roots, snapshot)
        text = json.dumps(payload)
        parsed = json.loads(text)
        assert parsed["spans"]
        top_names = [span["name"] for span in parsed["spans"]]
        assert "compile" in top_names
        compile_span = parsed["spans"][top_names.index("compile")]
        assert compile_span["duration_s"] >= 0.0
        children = [c["name"] for c in compile_span["children"]]
        assert "parse" in children
        assert parsed["metrics"]["schedule.steady_firings"] >= 1

    def test_chrome_trace_is_structurally_valid(self):
        roots, _ = _traced_pipeline()
        payload = export.to_chrome_trace(roots)
        # Round-trips through JSON without error.
        parsed = json.loads(json.dumps(payload))
        events = parsed["traceEvents"]
        assert events
        assert parsed["displayTimeUnit"] == "ms"
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for event in events:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["cat"] == "repro"
                assert isinstance(event["ts"], (int, float))
                assert isinstance(event["dur"], (int, float))
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
                assert isinstance(event["args"], dict)
        # Timestamps are normalized: something starts at (about) zero.
        assert min(e["ts"] for e in complete) < 1.0

    def test_chrome_trace_child_nested_within_parent(self):
        roots, _ = _traced_pipeline()
        events = export.to_chrome_trace(roots)["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        parent, child = by_name["compile"], by_name["parse"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= \
            parent["ts"] + parent["dur"] + 1.0  # float slack in us

    def test_write_chrome_trace(self, tmp_path):
        roots, _ = _traced_pipeline()
        path = export.write_chrome_trace(roots, tmp_path / "trace.json")
        parsed = json.loads(path.read_text())
        assert parsed["traceEvents"]
