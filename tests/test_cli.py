"""Tests for the command-line interface."""

import json

import pytest

import repro.cli
from repro.cli import main
from tests.conftest import TINY_PROGRAM


@pytest.fixture()
def tiny_file(tmp_path):
    path = tmp_path / "tiny.str"
    path.write_text(TINY_PROGRAM)
    return str(path)


class TestRun:
    def test_run_prints_outputs(self, tiny_file, capsys):
        assert main(["run", tiny_file, "-n", "3"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == ["0.0", "2.5", "5.0"]
        assert "checksum" in captured.err

    def test_run_quiet(self, tiny_file, capsys):
        assert main(["run", tiny_file, "-n", "2", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_run_with_ablation_flags(self, tiny_file, capsys):
        assert main(["run", tiny_file, "-n", "2", "--no-elim",
                     "--no-opt", "--quiet"]) == 0

    def test_missing_file(self, capsys):
        assert main(["run", "/does/not/exist.str"]) == 1
        assert "error" in capsys.readouterr().err

    def test_compile_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.str"
        path.write_text("void->void pipeline P { }")
        assert main(["run", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_divergence_returns_1(self, tiny_file, monkeypatch,
                                      capsys):
        real = repro.cli.check_equivalence

        def diverging(*args, **kwargs):
            report = real(*args, **kwargs)
            report.matches = False
            return report

        monkeypatch.setattr(repro.cli, "check_equivalence", diverging)
        assert main(["run", tiny_file, "-n", "2", "--quiet"]) == 1
        assert "diverge" in capsys.readouterr().err

    def test_run_trace_flag(self, tiny_file, capsys):
        assert main(["run", tiny_file, "-n", "2", "--quiet",
                     "--trace"]) == 0
        err = capsys.readouterr().err
        assert "pipeline trace" in err
        assert "compile" in err
        assert "optimize" in err
        assert "metrics:" in err


class TestEmit:
    def test_emit_lir(self, tiny_file, capsys):
        assert main(["emit", tiny_file, "--form", "lir"]) == 0
        out = capsys.readouterr().out
        assert "program Tiny" in out
        assert "steady" in out

    def test_emit_c(self, tiny_file, capsys):
        assert main(["emit", tiny_file, "--form", "c"]) == 0
        out = capsys.readouterr().out
        assert "repro_steady" in out
        assert "int main" in out

    def test_emit_fifo_c(self, tiny_file, capsys):
        assert main(["emit", tiny_file, "--form", "fifo-c"]) == 0
        out = capsys.readouterr().out
        assert "_push(" in out


class TestGraph:
    def test_graph_text(self, tiny_file, capsys):
        assert main(["graph", tiny_file]) == 0
        out = capsys.readouterr().out
        assert "Ramp" in out
        assert "schedule:" in out

    def test_graph_dot(self, tiny_file, capsys):
        assert main(["graph", tiny_file, "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "shape=box" in out


class TestSuiteCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fm_radio" in out
        assert "bitonic_sort" in out

    def test_report(self, capsys):
        assert main(["report", "lattice", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "outputs match: True" in out
        assert "Intel i7-2600K" in out

    def test_report_unknown(self, capsys):
        assert main(["report", "nope"]) == 1
        assert "unknown benchmark" in capsys.readouterr().err

    def test_report_trace_flag(self, capsys):
        assert main(["report", "lattice", "-n", "2", "--trace"]) == 0
        captured = capsys.readouterr()
        assert "outputs match: True" in captured.out
        assert "pipeline trace" in captured.err


PIPELINE_STAGES = ("compile", "parse", "elaborate", "flatten", "schedule",
                   "lower", "optimize", "run.fifo", "run.laminar")


class TestProfile:
    def test_profile_text_covers_every_stage(self, tiny_file, capsys):
        assert main(["profile", tiny_file, "-n", "2"]) == 0
        out = capsys.readouterr().out
        for stage in PIPELINE_STAGES:
            assert stage in out, f"missing stage {stage}"
        # per-pass optimizer metrics surface in the metric section
        assert "opt.dead_code_elimination.ops" in out
        assert "opt.fixpoint_rounds" in out
        assert "metrics:" in out

    def test_profile_suite_benchmark_by_name(self, capsys):
        assert main(["profile", "lattice", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "profile of Lattice" in out

    def test_profile_json_parses(self, tiny_file, capsys):
        assert main(["profile", tiny_file, "-n", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        top_names = [span["name"] for span in payload["spans"]]
        assert "compile" in top_names
        assert payload["metrics"]["schedule.steady_firings"] >= 1
        assert "interp.laminar.steady.total_ops" in payload["metrics"]

    def test_profile_chrome_trace_structurally_valid(self, tiny_file,
                                                     tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["profile", tiny_file, "-n", "2",
                     "--chrome-trace", str(path)]) == 0
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events
        names = {event["name"] for event in events}
        assert "compile" in names and "optimize" in names
        for event in events:
            assert event["ph"] in ("X", "M", "C")
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0
            if event["ph"] == "C":
                # Per-filter counter tracks from the metrics registry.
                assert event["args"]
                assert all(isinstance(v, (int, float))
                           for v in event["args"].values())

    def test_profile_unknown_target(self, capsys):
        assert main(["profile", "no_such_thing"]) == 1
        assert "error" in capsys.readouterr().err

    def test_profile_compile_error(self, tmp_path, capsys):
        path = tmp_path / "bad.str"
        path.write_text("void->void pipeline P { }")
        assert main(["profile", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_profile_divergence_returns_1(self, tiny_file, monkeypatch,
                                          capsys):
        real = repro.cli.check_equivalence

        def diverging(*args, **kwargs):
            report = real(*args, **kwargs)
            report.matches = False
            return report

        monkeypatch.setattr(repro.cli, "check_equivalence", diverging)
        assert main(["profile", tiny_file, "-n", "2"]) == 1
        assert "diverge" in capsys.readouterr().err

    def test_profile_leaves_tracing_disabled(self, tiny_file, capsys):
        from repro.obs import trace
        was = trace.is_enabled()
        assert main(["profile", tiny_file, "-n", "2"]) == 0
        capsys.readouterr()
        assert trace.is_enabled() == was


class TestFuzz:
    def test_fuzz_smoke(self, capsys):
        assert main(["fuzz", "--seed", "cli", "--runs", "3", "-n", "2"]) \
            == 0
        err = capsys.readouterr().err
        assert "3 programs" in err
        assert "0 divergence" in err

    def test_fuzz_reports_divergence(self, monkeypatch, capsys):
        import repro.fuzz.driver
        from repro.fuzz.oracle import Divergence, OracleReport

        def always_diverges(source, **kwargs):
            return OracleReport(Divergence(
                kind="output-mismatch", route="laminar-opt",
                detail="synthetic"))

        monkeypatch.setattr(repro.fuzz.driver, "run_source",
                            always_diverges)
        assert main(["fuzz", "--seed", "cli", "--runs", "2"]) == 1
        captured = capsys.readouterr()
        assert "output-mismatch" in captured.out
        assert "2 divergence" in captured.err

    def test_fuzz_writes_corpus(self, monkeypatch, tmp_path, capsys):
        import repro.fuzz.driver
        from repro.fuzz.oracle import Divergence, OracleReport

        monkeypatch.setattr(
            repro.fuzz.driver, "run_source",
            lambda source, **kwargs: OracleReport(Divergence(
                kind="output-mismatch", route="laminar-opt",
                detail="synthetic")))
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--seed", "x", "--runs", "1",
                     "--corpus-dir", str(corpus)]) == 1
        capsys.readouterr()
        files = list(corpus.glob("*.str"))
        assert len(files) == 1
        assert "Shrunk fuzz reproducer" in files[0].read_text()


class TestNonConvergenceNotice:
    def test_run_notices_nonconvergent_optimizer(self, tiny_file,
                                                 monkeypatch, capsys):
        import repro.opt.pipeline as pipeline
        monkeypatch.setattr(pipeline, "_FIXPOINT_ROUNDS", 0)
        with pytest.warns(RuntimeWarning):
            assert main(["run", tiny_file, "-n", "2", "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "notice: optimizer did not reach a fixpoint" in err

    def test_run_is_quiet_when_converged(self, tiny_file, capsys):
        assert main(["run", tiny_file, "-n", "2", "--quiet"]) == 0
        assert "notice:" not in capsys.readouterr().err


class TestOptPipelineFlags:
    def test_run_with_custom_pipeline(self, tiny_file, capsys):
        assert main(["run", tiny_file, "-n", "2", "--quiet",
                     "--opt-pipeline", "cp,fold,dce"]) == 0
        assert "checksum" in capsys.readouterr().err

    def test_run_with_max_rounds(self, tiny_file, capsys):
        assert main(["run", tiny_file, "-n", "2", "--quiet",
                     "--opt-max-rounds", "8"]) == 0
        assert "checksum" in capsys.readouterr().err

    def test_unknown_pass_rejected_up_front(self, tiny_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", tiny_file, "--opt-pipeline", "cp,frobnicate"])
        assert excinfo.value.code == 2
        assert "unknown optimizer pass" in capsys.readouterr().err

    def test_emit_respects_pipeline(self, tiny_file, capsys):
        assert main(["emit", tiny_file, "--form", "lir",
                     "--opt-pipeline", "cp"]) == 0
        assert "steady" in capsys.readouterr().out

    def test_report_prints_pass_table(self, capsys):
        assert main(["report", "lattice", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "optimizer pass" in out
        assert "dead_code_elimination" in out
        assert "fixpoint round(s)" in out

    def test_report_with_max_rounds_caps_fixpoint(self, capsys):
        # A cap of 0 deterministically hits the give-up path; small
        # programs can genuinely converge within a single capped round.
        with pytest.warns(RuntimeWarning):
            assert main(["report", "lattice", "-n", "2",
                         "--opt-max-rounds", "0"]) == 0
        captured = capsys.readouterr()
        assert "notice: optimizer did not reach a fixpoint" in captured.err
        assert "0 fixpoint round(s), gave up" in captured.out


class TestExitCodes:
    """Every ``except`` branch in ``main`` maps to a documented exit code
    (docs/ROBUSTNESS.md), checked end to end through a real subprocess so
    no in-process state can mask a raw traceback."""

    def cli(self, *argv, env_extra=None):
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        env = {**os.environ, "PYTHONPATH": str(repo / "src")}
        if env_extra:
            env.update(env_extra)
        return subprocess.run([sys.executable, "-m", "repro", *argv],
                              env=env, cwd=repo, capture_output=True,
                              text=True, timeout=120)

    def test_success_is_zero(self, tiny_file):
        proc = self.cli("run", tiny_file, "-n", "2", "--quiet")
        assert proc.returncode == 0

    def test_missing_file_is_one(self):
        proc = self.cli("run", "/does/not/exist.str")
        assert proc.returncode == 1
        assert "error" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_compile_error_is_one(self, tmp_path):
        path = tmp_path / "bad.str"
        path.write_text("void->void pipeline P { }")
        proc = self.cli("run", str(path))
        assert proc.returncode == 1
        assert "Traceback" not in proc.stderr

    def test_usage_error_is_two(self):
        proc = self.cli("run")  # missing the file operand
        assert proc.returncode == 2

    def test_bad_limits_spec_is_two(self, tiny_file):
        proc = self.cli("run", tiny_file, "--limits", "bogus=1")
        assert proc.returncode == 2
        assert "unknown resource limit" in proc.stderr

    def test_resource_exhausted_is_three(self, tiny_file):
        proc = self.cli("run", tiny_file, "--limits", "tokens=0")
        assert proc.returncode == 3
        assert proc.stderr.count("\n") == 1  # one structured line
        assert "resource exhausted" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_native_toolchain_failure_is_four(self, tiny_file):
        pytest.importorskip("repro.backend.runner")
        from repro.backend.runner import find_compiler
        if find_compiler() is None:
            pytest.skip("no C compiler on PATH")
        proc = self.cli("run", tiny_file, "-n", "2", "--quiet",
                        "--native", "--inject", "bin-nonzero:1")
        assert proc.returncode == 4
        assert "native run failure" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_degradation_is_zero(self, tiny_file):
        proc = self.cli("run", tiny_file, "-n", "2", "--quiet",
                        "--native", "--inject", "cc-timeout:1")
        assert proc.returncode == 0
        assert "degraded to interpreter results" in proc.stderr


class TestLedgerExitCodes:
    """``history``/``compare`` subprocess coverage: 0 ok, 1 regression,
    2 usage or unresolvable/missing ledger — never a raw traceback."""

    cli = TestExitCodes.cli

    @pytest.fixture()
    def seeded_ledger(self, tmp_path):
        """A ledger with a fast and a 2x-slower record for one target."""
        from repro.obs import ledger
        directory = tmp_path / "ledger"
        ledger.append(ledger.make_body("run", "tiny", seconds=1.0,
                                       checksum="aa"), directory)
        ledger.append(ledger.make_body("run", "tiny", seconds=2.0,
                                       checksum="aa"), directory)
        return {"REPRO_LEDGER_DIR": str(directory)}

    def test_history_after_runs_is_zero(self, tiny_file, tmp_path):
        env = {"REPRO_LEDGER_DIR": str(tmp_path / "ledger")}
        assert self.cli("run", tiny_file, "-n", "2", "--quiet",
                        env_extra=env).returncode == 0
        proc = self.cli("history", "tiny", env_extra=env)
        assert proc.returncode == 0
        assert "~0" in proc.stdout

    def test_history_json(self, seeded_ledger):
        proc = self.cli("history", "tiny", "--json",
                        env_extra=seeded_ledger)
        assert proc.returncode == 0
        records = json.loads(proc.stdout)
        assert len(records) == 2
        assert records[-1]["body"]["seconds"] == 2.0

    def test_compare_identical_is_zero(self, seeded_ledger):
        proc = self.cli("compare", "tiny~1", "tiny~1",
                        env_extra=seeded_ledger)
        assert proc.returncode == 0
        assert "regression: no" in proc.stdout

    def test_compare_2x_slowdown_is_one(self, seeded_ledger):
        proc = self.cli("compare", "tiny~1", "tiny~0",
                        env_extra=seeded_ledger)
        assert proc.returncode == 1
        assert "regression: YES" in proc.stdout
        assert "Traceback" not in proc.stderr

    def test_compare_threshold_overrides(self, seeded_ledger):
        proc = self.cli("compare", "tiny~1", "tiny~0",
                        "--threshold", "1.5", env_extra=seeded_ledger)
        assert proc.returncode == 0

    def test_compare_json_output(self, seeded_ledger):
        proc = self.cli("compare", "tiny~1", "tiny~0", "--json",
                        env_extra=seeded_ledger)
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["regression"] is True
        assert payload["metric_before"] == 1.0
        assert payload["metric_after"] == 2.0

    def test_history_usage_error_is_two(self):
        proc = self.cli("history")  # missing the target operand
        assert proc.returncode == 2

    def test_compare_usage_error_is_two(self):
        proc = self.cli("compare", "only-one-ref")
        assert proc.returncode == 2

    def test_unknown_ref_is_two(self, seeded_ledger):
        proc = self.cli("compare", "tiny", "no-such-target",
                        env_extra=seeded_ledger)
        assert proc.returncode == 2
        assert "no ledger record" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_missing_ledger_is_two(self, tmp_path):
        env = {"REPRO_LEDGER_DIR": str(tmp_path / "never-created")}
        proc = self.cli("history", "tiny", env_extra=env)
        assert proc.returncode == 2
        assert "no ledger at" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_history_past_end_ref_is_two(self, seeded_ledger):
        proc = self.cli("compare", "tiny~9", "tiny",
                        env_extra=seeded_ledger)
        assert proc.returncode == 2
        assert "past the ledger" in proc.stderr


class TestMetricsServe:
    cli = TestExitCodes.cli

    def test_print_only_emits_valid_exposition(self, tiny_file):
        proc = self.cli("metrics-serve", tiny_file, "-n", "2",
                        "--print-only")
        assert proc.returncode == 0
        assert proc.stdout.rstrip().endswith("# EOF")
        assert "repro_" in proc.stdout

    def test_self_check_scrapes_itself(self, tiny_file):
        proc = self.cli("metrics-serve", tiny_file, "-n", "2",
                        "--port", "0", "--self-check")
        assert proc.returncode == 0
        assert "repro_obs_up 1" in proc.stdout
        assert proc.stdout.rstrip().endswith("# EOF")


class TestTail:
    @staticmethod
    def _write(path, *records):
        with path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")

    @staticmethod
    def _access(**overrides):
        record = {"type": "access", "wall_time": 1700000000.25,
                  "request_id": "deadbeefcafe0001", "method": "POST",
                  "path": "/run", "route": "/run", "status": 200,
                  "backend": "laminar-c", "cache_hit": True,
                  "dedup": False, "degraded": False,
                  "run_route": "interp", "stream": "CountingTail",
                  "duration_ms": 12.5, "bytes_out": 128}
        record.update(overrides)
        return record

    def test_renders_access_records(self, tmp_path, capsys):
        log = tmp_path / "access.jsonl"
        self._write(log, self._access(),
                    self._access(request_id="deadbeefcafe0002",
                                 route="/metrics", method="GET",
                                 cache_hit=None, run_route=None,
                                 stream=None, duration_ms=1.0))
        assert main(["tail", str(log)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 2
        assert "deadbeefcafe0001" in lines[0]
        assert "POST" in lines[0]
        assert "/run" in lines[0]
        assert "200" in lines[0]
        assert "12.5ms" in lines[0]
        assert "hit" in lines[0]
        assert "interp" in lines[0]
        assert "CountingTail" in lines[0]
        assert "/metrics" in lines[1]

    def test_route_and_min_ms_filters(self, tmp_path, capsys):
        log = tmp_path / "access.jsonl"
        self._write(log,
                    self._access(request_id="a" * 16, duration_ms=5.0),
                    self._access(request_id="b" * 16, duration_ms=80.0),
                    self._access(request_id="c" * 16, route="/healthz",
                                 method="GET", duration_ms=500.0))
        assert main(["tail", str(log), "--route", "/run",
                     "--min-ms", "50"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 1
        assert "b" * 16 in lines[0]

    def test_skips_garbage_and_reads_event_logs(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        with log.open("w", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"type": "metrics",
                                     "metrics": {}}) + "\n")
            handle.write(json.dumps({
                "type": "event", "name": "serve.request",
                "wall_time": 1700000000.0,
                "attrs": {"request_id": "feedface00000001",
                          "route": "/run", "status": 200,
                          "backend": "laminar-c",
                          "duration_ms": 3.25}}) + "\n")
        assert main(["tail", str(log)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 1
        assert "feedface00000001" in lines[0]
        assert "/run" in lines[0]
        assert "3.2ms" in lines[0] or "3.3ms" in lines[0]

    def test_slow_requests_colored_when_forced(self, tmp_path, capsys):
        log = tmp_path / "access.jsonl"
        self._write(log, self._access(duration_ms=900.0),
                    self._access(request_id="deadbeefcafe0002",
                                 duration_ms=2.0))
        assert main(["tail", str(log), "--color", "always",
                     "--slow-ms", "500"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("\x1b[31m")
        assert lines[0].endswith("\x1b[0m")
        assert not lines[1].startswith("\x1b[")

    def test_no_matching_records_notice(self, tmp_path, capsys):
        log = tmp_path / "access.jsonl"
        self._write(log, self._access(duration_ms=1.0))
        assert main(["tail", str(log), "--min-ms", "1000"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "no matching records" in captured.err

    def test_missing_log_is_usage_error(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such log" in capsys.readouterr().err
