"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from tests.conftest import TINY_PROGRAM


@pytest.fixture()
def tiny_file(tmp_path):
    path = tmp_path / "tiny.str"
    path.write_text(TINY_PROGRAM)
    return str(path)


class TestRun:
    def test_run_prints_outputs(self, tiny_file, capsys):
        assert main(["run", tiny_file, "-n", "3"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == ["0.0", "2.5", "5.0"]
        assert "checksum" in captured.err

    def test_run_quiet(self, tiny_file, capsys):
        assert main(["run", tiny_file, "-n", "2", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_run_with_ablation_flags(self, tiny_file, capsys):
        assert main(["run", tiny_file, "-n", "2", "--no-elim",
                     "--no-opt", "--quiet"]) == 0

    def test_missing_file(self, capsys):
        assert main(["run", "/does/not/exist.str"]) == 1
        assert "error" in capsys.readouterr().err

    def test_compile_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.str"
        path.write_text("void->void pipeline P { }")
        assert main(["run", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestEmit:
    def test_emit_lir(self, tiny_file, capsys):
        assert main(["emit", tiny_file, "--form", "lir"]) == 0
        out = capsys.readouterr().out
        assert "program Tiny" in out
        assert "steady" in out

    def test_emit_c(self, tiny_file, capsys):
        assert main(["emit", tiny_file, "--form", "c"]) == 0
        out = capsys.readouterr().out
        assert "repro_steady" in out
        assert "int main" in out

    def test_emit_fifo_c(self, tiny_file, capsys):
        assert main(["emit", tiny_file, "--form", "fifo-c"]) == 0
        out = capsys.readouterr().out
        assert "_push(" in out


class TestGraph:
    def test_graph_text(self, tiny_file, capsys):
        assert main(["graph", tiny_file]) == 0
        out = capsys.readouterr().out
        assert "Ramp" in out
        assert "schedule:" in out

    def test_graph_dot(self, tiny_file, capsys):
        assert main(["graph", tiny_file, "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "shape=box" in out


class TestSuiteCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fm_radio" in out
        assert "bitonic_sort" in out

    def test_report(self, capsys):
        assert main(["report", "lattice", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "outputs match: True" in out
        assert "Intel i7-2600K" in out

    def test_report_unknown(self, capsys):
        assert main(["report", "nope"]) == 1
        assert "unknown benchmark" in capsys.readouterr().err
