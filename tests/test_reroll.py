"""The re-roll pass: collapsing unrolled firing runs into LoopRegions.

Covers period detection, the operand classifications (invariant,
internal, carried, affine, gather/scatter), interaction with the pass
manager and its def-use index, both interpreters, per-filter
attribution, and the C backend's counted-loop emission.  The property
the whole file leans on: a re-rolled program is bit-exact with its
fully-unrolled twin on every route.
"""

import pytest

from repro import compile_source
from repro.backend.laminar_c import generate_laminar_c
from repro.lir import lower
from repro.lir.ops import LoopRegion
from repro.opt import OptOptions, optimize, reroll_steady
from repro.suite import load_benchmark

from .conftest import requires_cc

# A peek-window filter fired 8x per steady iteration (Src pushes 8,
# Snk pops 8): the runs are long, the bodies are meaty, and the gather
# columns chain onto the peek buffer's state slot — the shape the pass
# profits on.  (Thin bodies whose gather/scatter overhead would match
# the body size are correctly rejected by the profitability guard.)
REPEAT_SOURCE = """
void->float filter Src() {
  float t;
  init { t = 0.0; }
  work push 8 { for (int i = 0; i < 8; i++) { push(t); t = t + 1.0; } }
}
float->float filter Fir() {
  work push 1 pop 1 peek 4 {
    float s = 0.0;
    for (int i = 0; i < 4; i++) { s = s + peek(i) * 0.5; }
    push(s);
    pop();
  }
}
float->void filter Snk() {
  work pop 8 { for (int i = 0; i < 8; i++) println(pop()); }
}
void->void pipeline P { add Src(); add Fir(); add Snk(); }
"""

# An accumulator across firings: re-rolling must thread it as a
# loop-carried value, not a gather.
CARRY_SOURCE = """
void->float filter Src() {
  float t;
  init { t = 1.0; }
  work push 8 { for (int i = 0; i < 8; i++) { push(t); t = t + 0.5; } }
}
float->float filter Acc {
  float acc;
  init { acc = 0.0; }
  work push 1 pop 1 { acc = acc + pop(); push(acc); }
}
float->void filter Snk() {
  work pop 8 { for (int i = 0; i < 8; i++) println(pop()); }
}
void->void pipeline P { add Src(); add Acc(); add Snk(); }
"""


def _regions(program) -> list[LoopRegion]:
    return [op for _title, ops in program.sections() for op in ops
            if isinstance(op, LoopRegion)]


class TestRegionFormation:
    def test_repeat_run_rerolled(self):
        stream = compile_source(REPEAT_SOURCE)
        program = lower(stream.schedule, stream.source)
        stats = optimize(program)
        assert stats.regions_rerolled >= 1
        regions = _regions(program)
        assert regions
        assert all(region.trips >= 2 for region in regions)

    def test_reroll_off_leaves_unrolled(self):
        stream = compile_source(REPEAT_SOURCE)
        program = lower(stream.schedule, stream.source)
        stats = optimize(program, OptOptions(reroll=False))
        assert stats.regions_rerolled == 0
        assert not _regions(program)

    def test_min_repeat_threshold_respected(self):
        stream = compile_source(REPEAT_SOURCE)
        program = lower(stream.schedule, stream.source)
        # No run repeats 100 times; nothing may re-roll.
        stats = optimize(program, OptOptions(reroll_min_repeat=100))
        assert stats.regions_rerolled == 0

    def test_trips_times_body_matches_expanded_count(self):
        stream = compile_source(REPEAT_SOURCE)
        unrolled = lower(stream.schedule, stream.source)
        optimize(unrolled, OptOptions(reroll=False))
        rerolled = lower(stream.schedule, stream.source)
        optimize(rerolled)
        # The structural count shrinks; the expanded count is what the
        # interpreter executes (gather/scatter may add a bounded
        # overhead, never the reverse blow-up).
        static = sum(1 + len(op.body) if isinstance(op, LoopRegion)
                     else 1 for op in rerolled.steady)
        assert static < len(unrolled.steady)

    def test_regions_execute_directly_bit_exact(self):
        stream = compile_source(REPEAT_SOURCE)
        on = stream.run_laminar(5)
        off = stream.run_laminar(5, opt=OptOptions(reroll=False))
        assert on.outputs == off.outputs

    def test_carried_accumulator_bit_exact(self):
        stream = compile_source(CARRY_SOURCE)
        on = stream.run_laminar(5)
        off = stream.run_laminar(5, opt=OptOptions(reroll=False))
        assert on.outputs == off.outputs

    def test_fifo_route_agrees(self):
        stream = compile_source(CARRY_SOURCE)
        fifo = stream.run_fifo(4)
        laminar = stream.run_laminar(4)
        assert fifo.outputs == laminar.outputs

    def test_standalone_pass_returns_region_count(self):
        stream = compile_source(REPEAT_SOURCE)
        program = lower(stream.schedule, stream.source)
        # Run the prerequisite cleanups the default pipeline would.
        optimize(program, OptOptions(
            pipeline=("copy_propagation", "promote_state")))
        formed = reroll_steady(program)
        assert formed == len(_regions(program))
        assert formed >= 1


class TestPassManagerIntegration:
    def test_index_valid_with_regions(self):
        stream = compile_source(REPEAT_SOURCE)
        program = lower(stream.schedule, stream.source)
        # verify_analyses re-checks the def-use index against the
        # program after every pass — including region bodies.
        stats = optimize(program, OptOptions(verify_analyses=True))
        assert stats.regions_rerolled >= 1

    def test_worklist_passes_converge_with_regions(self):
        stream = compile_source(REPEAT_SOURCE)
        program = lower(stream.schedule, stream.source)
        stats = optimize(program)
        assert stats.converged

    def test_verifier_accepts_optimized_program(self):
        from repro.lir.verify import verify
        stream = compile_source(CARRY_SOURCE)
        program = lower(stream.schedule, stream.source)
        optimize(program)
        verify(program)  # raises on any malformed region

    def test_benchmark_rerolls_and_verifies(self):
        from repro.lir.verify import verify
        stream = load_benchmark("filterbank")
        lowered = stream.lower()
        assert lowered.opt_stats.regions_rerolled >= 1
        verify(lowered.program)

    def test_attribution_rows_sum_to_expanded_totals(self):
        from repro.lir.attribution import attribute_program
        stream = load_benchmark("filterbank")
        program = stream.lower().program
        rows = attribute_program(program)
        assert program.steady_op_count_expanded > len(program.steady)
        assert sum(row.steady_ops for row in rows) \
            == program.steady_op_count_expanded

    def test_all_sections_eligible(self):
        # filterbank's init schedule dwarfs its steady section; the
        # pass must collapse both, not just the steady state.
        stream = load_benchmark("filterbank")
        program = stream.lower().program
        assert any(isinstance(op, LoopRegion) for op in program.init)
        assert any(isinstance(op, LoopRegion) for op in program.steady)


class TestCodegen:
    def test_counted_loop_emitted(self):
        stream = load_benchmark("filterbank")
        program = stream.lower().program
        code = generate_laminar_c(program)
        assert "restrict" in code
        assert "#pragma omp simd" in code

    def test_rerolled_c_is_smaller(self):
        stream = load_benchmark("filterbank")
        rerolled = generate_laminar_c(stream.lower().program)
        unrolled = generate_laminar_c(
            stream.lower(opt=OptOptions(reroll=False)).program)
        assert len(rerolled) < len(unrolled)

    def test_lir_dump_prints_regions(self):
        stream = compile_source(REPEAT_SOURCE)
        program = lower(stream.schedule, stream.source)
        optimize(program)
        text = program.dump()
        assert "loop " in text

    @requires_cc
    def test_native_checksums_match_unrolled(self):
        from repro.backend.runner import compile_and_run
        stream = load_benchmark("autocor")
        on = compile_and_run(
            generate_laminar_c(stream.lower().program), iterations=4)
        off = compile_and_run(
            generate_laminar_c(
                stream.lower(opt=OptOptions(reroll=False)).program),
            iterations=4)
        assert on.checksum == off.checksum
        assert on.output_count == off.output_count

    @requires_cc
    def test_profile_rows_survive_rerolling(self):
        from repro.backend.runner import compile_and_run
        stream = load_benchmark("autocor")
        lowered = stream.lower()
        assert lowered.opt_stats.regions_rerolled >= 1
        run = compile_and_run(
            generate_laminar_c(lowered.program, profile=True),
            iterations=4)
        assert run.profile is not None
        # Per-filter op attribution accumulates per trip, so profiled
        # op counts reflect the *expanded* work, matching the
        # attribution rows of the re-rolled program.
        from repro.lir.attribution import attribute_program
        expected = {row.name: row.steady_ops
                    for row in attribute_program(lowered.program)
                    if row.steady_ops}
        profiled = {entry["name"]: entry["ops"]
                    for entry in run.profile["filters"]
                    if entry["ops"]}
        iterations = run.profile["iterations"]
        assert profiled == {name: ops * iterations
                            for name, ops in expected.items()}
