"""Tests for balance equations and schedule construction."""

import pytest

from repro.frontend import parse_and_check
from repro.frontend.errors import RateError
from repro.graph import elaborate, flatten
from repro.graph.nodes import FilterVertex
from repro.scheduling import (build_schedule, repetition_vector,
                              steady_state_token_counts)

PREAMBLE = """
float->float filter Id() { work push 1 pop 1 { push(pop()); } }
float->float filter Up(int u) {
  work push u pop 1 {
    push(pop());
    for (int i = 1; i < u; i++) push(0);
  }
}
float->float filter Down(int d) {
  work push 1 pop d {
    push(pop());
    for (int i = 1; i < d; i++) pop();
  }
}
float->float filter Win(int n) {
  work push 1 pop 1 peek n {
    float s = 0;
    for (int i = 0; i < n; i++) s += peek(i);
    push(s); pop();
  }
}
float->float filter DelayK(int k) {
  prework push k { for (int i = 0; i < k; i++) push(0); }
  work push 1 pop 1 { push(pop()); }
}
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
"""


def graph_of(top):
    return flatten(elaborate(parse_and_check(PREAMBLE + top)))


def reps_by_name(graph):
    reps = repetition_vector(graph)
    return {v.name: r for v, r in reps.items()}


class TestBalanceEquations:
    def test_identity_pipeline_all_ones(self):
        graph = graph_of("void->void pipeline P { add Src(); add Id(); "
                         "add Snk(); }")
        assert set(reps_by_name(graph).values()) == {1}

    def test_rate_conversion(self):
        graph = graph_of("void->void pipeline P { add Src(); add Up(3); "
                         "add Down(2); add Snk(); }")
        reps = reps_by_name(graph)
        assert reps["Src"] == 2
        assert reps["Up"] == 2
        assert reps["Down"] == 3
        assert reps["Snk"] == 3

    def test_minimality(self):
        graph = graph_of("void->void pipeline P { add Src(); add Up(2); "
                         "add Down(2); add Snk(); }")
        reps = reps_by_name(graph)
        # gcd of the vector must be 1
        from math import gcd
        g = 0
        for value in reps.values():
            g = gcd(g, value)
        assert g == 1

    def test_splitjoin_rates(self):
        graph = graph_of(
            "void->void pipeline P { add Src(); add splitjoin { "
            "split roundrobin(1, 2); add Id(); add Down(2); "
            "join roundrobin(1, 1); }; add Snk(); }")
        reps = reps_by_name(graph)
        # splitter consumes 3/firing; branch2 receives 2 and halves them
        assert reps["Src"] == 3 * reps["P.split"] \
            if "P.split" in reps else True
        counts = steady_state_token_counts(graph,
                                           repetition_vector(graph))
        assert all(v > 0 for v in counts.values())

    def test_token_counts_balanced(self, demo_stream):
        counts = steady_state_token_counts(demo_stream.graph,
                                           demo_stream.schedule.reps)
        assert all(v > 0 for v in counts.values())

    def test_peek_does_not_change_balance(self):
        plain = graph_of("void->void pipeline P { add Src(); add Id(); "
                         "add Snk(); }")
        peeky = graph_of("void->void pipeline P { add Src(); add Win(9); "
                         "add Snk(); }")
        assert set(reps_by_name(plain).values()) == \
            set(reps_by_name(peeky).values())


class TestSchedules:
    def test_steady_matches_repetition_vector(self):
        graph = graph_of("void->void pipeline P { add Src(); add Up(3); "
                         "add Down(2); add Snk(); }")
        schedule = build_schedule(graph)
        fired: dict[str, int] = {}
        for firing in schedule.steady:
            fired[firing.vertex.name] = fired.get(firing.vertex.name, 0) + 1
        expected = {v.name: r for v, r in schedule.reps.items()}
        assert fired == expected

    def test_no_init_needed_without_peeking(self):
        graph = graph_of("void->void pipeline P { add Src(); add Id(); "
                         "add Snk(); }")
        schedule = build_schedule(graph)
        assert schedule.init == []

    def test_peek_filter_gets_prefill(self):
        graph = graph_of("void->void pipeline P { add Src(); add Win(6); "
                         "add Snk(); }")
        schedule = build_schedule(graph)
        win = [v for v in graph.filters if "Win" in v.name][0]
        channel = win.inputs[0]
        # the surplus equals peek - pop
        assert schedule.post_init_tokens[channel.name] == 5

    def test_steady_restores_occupancy(self, demo_stream):
        # build_schedule itself validates this; re-validate independently
        schedule = demo_stream.schedule
        tokens = {ch.name: len(ch.initial)
                  for ch in demo_stream.graph.channels}
        from repro.scheduling.schedule import _rates
        for firing in schedule.init + schedule.steady:
            pops, pushes, _ = _rates(firing.vertex, firing.prework)
            for port, channel in enumerate(firing.vertex.inputs):
                tokens[channel.name] -= pops[port]
                assert tokens[channel.name] >= 0
            for port, channel in enumerate(firing.vertex.outputs):
                tokens[channel.name] += pushes[port]
        assert tokens == schedule.post_init_tokens

    def test_prework_fires_once_first(self):
        graph = graph_of("void->void pipeline P { add Src(); add DelayK(3); "
                         "add Snk(); }")
        schedule = build_schedule(graph)
        delay_firings = [f for f in schedule.init + schedule.steady
                         if "DelayK" in f.vertex.name]
        assert delay_firings[0].prework
        assert all(not f.prework for f in delay_firings[1:])

    def test_prework_only_in_init(self):
        graph = graph_of("void->void pipeline P { add Src(); add DelayK(2); "
                         "add Snk(); }")
        schedule = build_schedule(graph)
        assert all(not f.prework for f in schedule.steady)

    def test_buffer_bounds_cover_occupancy(self, demo_stream):
        schedule = demo_stream.schedule
        for name, bound in schedule.buffer_bounds.items():
            assert bound >= schedule.post_init_tokens[name]

    def test_feedback_loop_schedules(self):
        source = PREAMBLE + """
        float->float filter Mix() {
          work push 2 pop 2 {
            float a = pop();
            float b = pop();
            push((a + b) / 2);
            push(a - b);
          }
        }
        void->void pipeline P {
          add Src();
          add feedbackloop {
            join roundrobin(1, 1);
            body Mix();
            loop Id();
            split roundrobin(1, 1);
            enqueue 0.0;
          };
          add Snk();
        }
        """
        graph = flatten(elaborate(parse_and_check(source)))
        schedule = build_schedule(graph)
        assert len(schedule.steady) > 0

    def test_inconsistent_rates_detected(self):
        # A splitjoin whose branches produce at different effective rates
        # relative to the join weights has no repetition vector.
        source = PREAMBLE + """
        void->void pipeline P {
          add Src();
          add splitjoin {
            split roundrobin(1, 1);
            add Id();
            add Up(2);
            join roundrobin(1, 1);
          };
          add Snk();
        }
        """
        graph = flatten(elaborate(parse_and_check(source)))
        with pytest.raises(RateError, match="inconsistent rates"):
            repetition_vector(graph)

    def test_schedule_reuses_graph(self, demo_stream):
        assert demo_stream.schedule.graph is demo_stream.graph

    def test_steady_length_property(self, demo_stream):
        assert demo_stream.schedule.steady_length == \
            len(demo_stream.schedule.steady)
