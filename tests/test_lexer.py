"""Unit tests for the lexer."""

import pytest

from repro.frontend.errors import LexError
from repro.frontend.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)][:-1]  # drop EOF


class TestBasics:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_identifier(self):
        tokens = tokenize("hello_42")
        assert tokens[0].kind == "ident"
        assert tokens[0].text == "hello_42"

    def test_keywords_are_their_own_kind(self):
        assert kinds("filter pipeline work push")[:-1] == \
            ["filter", "pipeline", "work", "push"]

    def test_keyword_prefix_is_identifier(self):
        tokens = tokenize("pushy popper")
        assert [t.kind for t in tokens[:-1]] == ["ident", "ident"]

    def test_eof_is_idempotent(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == "eof"


class TestNumbers:
    def test_int_literal(self):
        token = tokenize("1234")[0]
        assert token.kind == "int_lit"
        assert token.text == "1234"

    def test_float_with_point(self):
        assert tokenize("3.25")[0].kind == "float_lit"

    def test_float_leading_dot(self):
        token = tokenize(".5")[0]
        assert token.kind == "float_lit"
        assert float(token.text) == 0.5

    def test_float_exponent(self):
        assert tokenize("1e9")[0].kind == "float_lit"
        assert tokenize("2.5e-3")[0].kind == "float_lit"
        assert tokenize("7E+2")[0].kind == "float_lit"

    def test_float_f_suffix(self):
        token = tokenize("1.5f")[0]
        assert token.kind == "float_lit"
        assert token.text == "1.5"

    def test_int_with_f_suffix_is_float(self):
        assert tokenize("3f")[0].kind == "float_lit"

    def test_int_then_dot_dot_is_not_float(self):
        # `1.` followed by another `.` should not swallow both dots.
        tokens = tokenize("1 . x")
        assert tokens[0].kind == "int_lit"


class TestOperators:
    def test_maximal_munch_shift(self):
        assert kinds("a << b")[:-1] == ["ident", "<<", "ident"]

    def test_maximal_munch_compound_assign(self):
        assert kinds("a <<= b")[:-1] == ["ident", "<<=", "ident"]

    def test_arrow(self):
        assert kinds("int->float")[:-1] == ["int", "->", "float"]

    def test_arrow_vs_minus(self):
        assert kinds("a - > b")[:-1] == ["ident", "-", ">", "ident"]

    def test_increment(self):
        assert kinds("i++")[:-1] == ["ident", "++"]

    def test_all_single_chars(self):
        source = "+ - * / % = < > ! ~ & | ^ ( ) { } [ ] , ; : ? ."
        expected = source.split()
        assert kinds(source)[:-1] == expected


class TestCommentsAndStrings:
    def test_line_comment(self):
        assert kinds("a // comment\n b")[:-1] == ["ident", "ident"]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b")[:-1] == ["ident", "ident"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated block comment"):
            tokenize("a /* oops")

    def test_string_literal(self):
        token = tokenize('"hi there"')[0]
        assert token.kind == "string"
        assert token.text == "hi there"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb\t\"q\""')[0].text == 'a\nb\t"q"'

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated string"):
            tokenize('"oops')

    def test_unknown_escape(self):
        with pytest.raises(LexError, match="unknown escape"):
            tokenize(r'"\q"')


class TestLocations:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].loc.line, tokens[0].loc.column) == (1, 1)
        assert (tokens[1].loc.line, tokens[1].loc.column) == (2, 3)

    def test_location_after_comment(self):
        tokens = tokenize("// c\nx")
        assert tokens[0].loc.line == 2

    def test_filename_recorded(self):
        token = tokenize("x", filename="foo.str")[0]
        assert token.loc.filename == "foo.str"

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a $ b")
