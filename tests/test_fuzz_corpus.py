"""Replay every checked-in fuzz reproducer as a regression test.

Each ``tests/fuzz_corpus/*.str`` file is a shrunk program that once
exposed a divergence between execution routes.  Replaying them through
the differential oracle keeps the underlying fixes honest: any
regression shows up as a route disagreement, not just a unit-test
failure.
"""

from pathlib import Path

import pytest

from repro.backend.runner import find_compiler
from repro.fuzz.oracle import run_source

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.str"))


def test_corpus_is_populated():
    assert CORPUS, f"no reproducers found in {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_reproducer_routes_agree(path):
    report = run_source(path.read_text(), iterations=4)
    assert report.skipped is None, report.skipped
    assert report.divergence is None, str(report.divergence)


@pytest.mark.skipif(find_compiler() is None,
                    reason="no C compiler on PATH")
@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_reproducer_native_routes_agree(path):
    report = run_source(path.read_text(), iterations=4, native=True)
    assert report.skipped is None, report.skipped
    assert report.divergence is None, str(report.divergence)
